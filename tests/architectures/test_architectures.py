"""Unit and integration tests for the DTS / PRS / MSS / NLF architectures."""

from __future__ import annotations

import pytest

from repro.simkit import Environment
from repro.architectures import (
    ARCHITECTURES,
    DeploymentError,
    DTSArchitecture,
    MSSArchitecture,
    NLFArchitecture,
    PRSArchitecture,
    Testbed,
    TestbedConfig,
    make_architecture,
)
from repro.netsim import MessageFactory
from repro.netsim import units


def make_testbed(env, **overrides):
    params = dict(producer_nodes=2, consumer_nodes=2, dsn_count=3)
    params.update(overrides)
    return Testbed(env, TestbedConfig(**params))


def deploy(env, architecture):
    env.run(until=env.process(architecture.deploy()))
    return architecture


def run_one_message(env, testbed, architecture, payload=units.kib(16)):
    """Publish one message through the architecture and consume it."""
    testbed.declare_work_queue("work")
    producer = architecture.attach_producer(testbed.producer_host(0), "prod-0")
    consumer = architecture.attach_consumer(testbed.consumer_host(0), "cons-0")
    consumer.subscriber.subscribe("work")
    factory = MessageFactory("prod-0")
    box = []

    def setup(env):
        # Pre-establish connections (the harness does this before measuring)
        # so message latency reflects the steady-state data path, not TCP/TLS
        # handshakes.
        yield from producer.publisher.connection.establish()
        yield from consumer.subscriber.connection.establish()

    env.run(until=env.process(setup(env)))

    def produce(env):
        message = factory.create(payload, now=env.now, routing_key="work")
        ok = yield from producer.publisher.publish(message)
        assert ok

    def consume(env):
        message = yield consumer.subscriber.get()
        box.append(message)

    env.process(produce(env))
    env.process(consume(env))
    env.run()
    assert len(box) == 1
    return box[0]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_registry_contains_paper_labels():
    for label in ["DTS", "PRS(Stunnel)", "PRS(HAProxy)", "PRS(HAProxy,4conns)", "MSS"]:
        assert label in ARCHITECTURES


def test_make_architecture_unknown_label():
    env = Environment()
    testbed = make_testbed(env)
    with pytest.raises(ValueError):
        make_architecture("FTP", testbed)


def test_make_architecture_labels_match():
    env = Environment()
    testbed = make_testbed(env)
    arch = make_architecture("PRS(HAProxy,4conns)", testbed)
    assert isinstance(arch, PRSArchitecture)
    assert arch.num_connections == 4
    assert arch.label == "PRS(HAProxy,4conns)"


# ---------------------------------------------------------------------------
# Deployment prerequisites
# ---------------------------------------------------------------------------

def test_attach_before_deploy_raises():
    env = Environment()
    testbed = make_testbed(env)
    arch = DTSArchitecture(testbed)
    with pytest.raises(DeploymentError):
        arch.attach_producer(testbed.producer_host(0), "p0")


def test_dts_deploy_opens_nodeports_and_firewall_rules():
    env = Environment()
    testbed = make_testbed(env)
    arch = deploy(env, DTSArchitecture(testbed))
    report = arch.deployment_report()
    assert report.nodeports_exposed == 6          # 2 ports x 3 pods
    assert report.firewall_rules == 6
    assert report.multi_user_scalability == 1
    assert testbed.hpc_facility.permits_ingress("198.51.100.9", "dsn1", 30672)


def test_prs_deploy_establishes_scistream_session():
    env = Environment()
    testbed = make_testbed(env)
    arch = deploy(env, PRSArchitecture(testbed, proxy_type="haproxy"))
    assert arch.session is not None
    assert arch.producer_proxy.gateway_name == "gw-prod"
    assert arch.consumer_proxy.gateway_name == "gw-cons"
    report = arch.deployment_report()
    assert report.firewall_rules == 2
    assert report.multi_user_scalability == 3


def test_mss_deploy_provisions_via_s3m_and_registers_route():
    env = Environment()
    testbed = make_testbed(env)
    arch = deploy(env, MSSArchitecture(testbed))
    assert arch.hostname is not None
    assert arch.hostname in testbed.dns.known_names()
    backends = testbed.ingress.route_controller.backends(arch.hostname)
    assert {b.host for b in backends} == {"dsn1", "dsn2", "dsn3"}
    report = arch.deployment_report()
    assert report.firewall_rules == 0
    assert report.multi_user_scalability == 5
    # Deployment takes auth + 3 nodes of provisioning time.
    assert env.now > 6.0


def test_nlf_deploy_adds_router_node():
    env = Environment()
    testbed = make_testbed(env)
    arch = deploy(env, NLFArchitecture(testbed))
    assert "nlf-router" in testbed.network.nodes
    assert testbed.hpc_facility.nat.mapping_count == 3


# ---------------------------------------------------------------------------
# Hop counts: DTS < PRS/NLF < MSS
# ---------------------------------------------------------------------------

def test_hop_count_ordering_matches_paper():
    env = Environment()
    testbed = make_testbed(env)
    dts = deploy(env, DTSArchitecture(testbed))
    prs = deploy(env, PRSArchitecture(testbed))
    mss = deploy(env, MSSArchitecture(testbed))
    dts_hops = dts.data_path_hop_count()
    prs_hops = prs.data_path_hop_count()
    mss_hops = mss.data_path_hop_count()
    assert dts_hops < prs_hops
    assert dts_hops < mss_hops
    assert dts_hops == 4    # producer->core->dsn + dsn->core->consumer
    assert prs_hops == 7    # publish path gains 3 extra link hops
    assert mss_hops == 10   # both directions cross LB + ingress


def test_mss_bypass_reduces_consumer_hops():
    env = Environment()
    testbed = make_testbed(env)
    mss = deploy(env, MSSArchitecture(testbed))
    bypass = deploy(env, MSSArchitecture(testbed, bypass_lb_for_internal=True))
    assert bypass.data_path_hop_count() < mss.data_path_hop_count()
    assert bypass.label == "MSS(bypass)"


# ---------------------------------------------------------------------------
# End-to-end single message through each architecture
# ---------------------------------------------------------------------------

def test_dts_end_to_end_message_path():
    env = Environment()
    testbed = make_testbed(env)
    arch = deploy(env, DTSArchitecture(testbed))
    message = run_one_message(env, testbed, arch)
    elements = [hop.element for hop in message.hops]
    assert "olcf-core" in elements
    assert any(e.startswith("dsn") for e in elements)
    assert message.latency > 0


def test_prs_end_to_end_goes_through_both_proxies():
    env = Environment()
    testbed = make_testbed(env)
    arch = deploy(env, PRSArchitecture(testbed, proxy_type="haproxy"))
    message = run_one_message(env, testbed, arch)
    kinds = [hop.kind for hop in message.hops]
    assert kinds.count("proxy") == 2
    # Delivery to the consumer is direct: the last hops contain no proxy.
    elements = [hop.element for hop in message.hops]
    assert elements[-1].startswith("andes")


def test_mss_end_to_end_crosses_lb_and_ingress_twice():
    env = Environment()
    testbed = make_testbed(env)
    arch = deploy(env, MSSArchitecture(testbed))
    message = run_one_message(env, testbed, arch)
    elements = [hop.element for hop in message.hops]
    assert elements.count("lb1") == 2
    assert elements.count("ingress1") == 2


def test_single_message_latency_ordering_dts_fastest():
    def latency_for(label):
        env = Environment()
        testbed = make_testbed(env)
        arch = deploy(env, make_architecture(label, testbed))
        return run_one_message(env, testbed, arch).latency

    dts = latency_for("DTS")
    prs = latency_for("PRS(HAProxy)")
    mss = latency_for("MSS")
    assert dts < prs
    assert dts < mss
    assert mss > prs


# ---------------------------------------------------------------------------
# PRS tunnel constraints
# ---------------------------------------------------------------------------

def test_prs_stunnel_connection_cap_limits_producers():
    env = Environment()
    testbed = make_testbed(env)
    arch = deploy(env, PRSArchitecture(testbed, proxy_type="stunnel"))
    # Stunnel supports 16 simultaneous connections: the 17th producer fails,
    # which is why the paper has no 32/64-consumer Stunnel data points.
    for i in range(16):
        arch.attach_producer(testbed.producer_host(i), f"p{i}")
    with pytest.raises(DeploymentError):
        arch.attach_producer(testbed.producer_host(16), "p16")


def test_prs_haproxy_many_producers_allowed():
    env = Environment()
    testbed = make_testbed(env)
    arch = deploy(env, PRSArchitecture(testbed, proxy_type="haproxy"))
    for i in range(32):
        arch.attach_producer(testbed.producer_host(i), f"p{i}")
    assert len(arch.endpoints) == 32


def test_prs_invalid_num_connections():
    env = Environment()
    testbed = make_testbed(env)
    with pytest.raises(ValueError):
        PRSArchitecture(testbed, num_connections=0)


# ---------------------------------------------------------------------------
# Deployment reports
# ---------------------------------------------------------------------------

def test_deployment_reports_burden_ordering():
    env = Environment()
    testbed = make_testbed(env)
    dts = deploy(env, DTSArchitecture(testbed))
    prs = deploy(env, PRSArchitecture(testbed))
    mss = deploy(env, MSSArchitecture(testbed))
    dts_burden = dts.deployment_report().operational_burden()
    prs_burden = prs.deployment_report().operational_burden()
    mss_burden = mss.deployment_report().operational_burden()
    assert dts_burden > prs_burden > mss_burden


def test_deployment_report_row_has_all_axes():
    env = Environment()
    testbed = make_testbed(env)
    arch = deploy(env, DTSArchitecture(testbed))
    row = arch.deployment_report().as_row()
    from repro.architectures import FEASIBILITY_AXES
    for axis in FEASIBILITY_AXES:
        assert axis in row
