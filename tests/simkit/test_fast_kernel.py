"""Unit tests for the simkit hot-path machinery.

Covers the invariants the fast-kernel overhaul must preserve:

* the zero-delay FIFO lanes merge with the time heap in exact
  ``(time, priority, eid)`` order (bit-identical to an all-heap schedule),
* processed value-less timeouts are recycled through the freelist, and
  everything that may legitimately re-inspect a timeout (conditions,
  ``run(until=...)``, value-carrying timeouts) is pinned out of it,
* ``Event.trigger`` validates both endpoints of the chain,
* the single-callback slot upgrades to a list transparently.
"""

from __future__ import annotations

import pytest

from repro.simkit import AllOf, AnyOf, Environment, SchedulingError
from repro.simkit.core import Event, Timeout, _TIMEOUT_FREELIST_MAX


# ---------------------------------------------------------------------------
# Zero-delay lane ordering vs heap ordering
# ---------------------------------------------------------------------------

def test_lane_event_runs_after_older_heap_event_at_same_time():
    """A zero-delay event scheduled *at* t must not overtake a heap entry
    that was scheduled earlier (smaller eid) and lands at the same t."""
    env = Environment()
    order = []

    def first(env):
        yield env.timeout(1.0)  # scheduled first -> smaller eid
        order.append("first")
        # Now at t=1.0: a zero-delay event goes onto the lane with a large
        # eid, while `second`'s resume still sits in the heap with a
        # smaller one.
        done = env.event()
        done.add_callback(lambda event: order.append("lane"))
        done.succeed()

    def second(env):
        yield env.timeout(1.0)  # scheduled second, same trigger time
        order.append("second")

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert order == ["first", "second", "lane"]


def test_urgent_lane_beats_older_normal_lane_entries():
    """Urgent zero-delay events (process starts, interrupts) run before
    normal zero-delay events queued earlier at the same instant."""
    env = Environment()
    order = []

    def starter(env):
        yield env.timeout(1.0)
        # Normal-priority zero-delay event first (smaller eid)...
        normal = env.event()
        normal.add_callback(lambda event: order.append("normal"))
        normal.succeed()
        # ...then a process start, which schedules an *urgent* event.
        env.process(child(env))

    def child(env):
        order.append("urgent-start")
        yield env.timeout(0)

    env.process(starter(env))
    env.run()
    assert order[:2] == ["urgent-start", "normal"]


def test_zero_delay_events_preserve_fifo_order():
    env = Environment()
    order = []

    def make(tag):
        def proc(env):
            yield env.timeout(0)
            order.append(tag)
        return proc

    for tag in range(8):
        env.process(make(tag)(env))
    env.run()
    assert order == list(range(8))


def test_peek_sees_lane_entries_at_current_time():
    env = Environment(initial_time=3.0)
    env.timeout(5.0)
    assert env.peek() == 8.0
    env.event().succeed()  # zero-delay lane entry at t=3.0
    assert env.peek() == 3.0


def test_step_drains_lanes_and_heap_in_key_order():
    env = Environment()
    t = env.timeout(0.5)
    zero = env.timeout(0)
    # Manual stepping: the zero-delay lane entry precedes the heap entry.
    env.step()
    assert zero.processed and not t.processed
    env.step()
    assert t.processed
    with pytest.raises(IndexError):
        env.step()


# ---------------------------------------------------------------------------
# Timeout freelist
# ---------------------------------------------------------------------------

def test_processed_timeout_is_recycled():
    env = Environment()
    t1 = env.timeout(0.5)
    env.run()
    # Reuse-after-processed invariant: the old reference still reads as a
    # processed, successful, value-less timeout while it sits in the pool.
    assert t1.processed and t1.ok and t1.value is None
    t2 = env.timeout(0.25)
    assert t2 is t1
    assert t2.triggered and not t2.processed
    assert t2.delay == 0.25
    env.run()
    assert t2.processed


def test_recycled_timeout_resumes_a_fresh_waiter():
    env = Environment()
    times = []

    def sleeper(env, delay):
        yield env.timeout(delay)
        times.append(env.now)

    env.process(sleeper(env, 1.0))
    env.run()
    env.process(sleeper(env, 2.0))
    env.run()
    assert times == [1.0, 3.0]


def test_condition_watched_timeout_is_pinned():
    env = Environment()
    t1 = env.timeout(1.0)
    AllOf(env, [t1])
    env.run()
    assert env.timeout(1.0) is not t1
    # The condition may read the child's value long after processing.
    assert t1.value is None and t1.ok


def test_anyof_loser_timeout_is_pinned():
    env = Environment()
    winner = env.timeout(1.0)
    loser = env.timeout(5.0)
    AnyOf(env, [winner, loser])
    env.run()
    assert env.timeout(1.0) is not winner
    assert env.timeout(5.0) is not loser


def test_value_carrying_timeout_is_not_recycled():
    env = Environment()
    t1 = env.timeout(1.0, value="payload")
    env.run()
    t2 = env.timeout(1.0)
    assert t2 is not t1
    assert t1.value == "payload"


def test_run_until_timeout_is_pinned():
    env = Environment()
    deadline = env.timeout(1.0)
    env.run(until=deadline)
    assert env.timeout(1.0) is not deadline


def test_freelist_is_bounded():
    env = Environment()
    for _ in range(3 * _TIMEOUT_FREELIST_MAX):
        env.timeout(0.001)
    env.run()
    assert len(env._timeout_free) <= _TIMEOUT_FREELIST_MAX


def test_negative_delay_still_rejected_with_warm_freelist():
    env = Environment()
    env.timeout(0.1)
    env.run()  # freelist now warm
    with pytest.raises(SchedulingError):
        env.timeout(-0.5)


# ---------------------------------------------------------------------------
# Event.trigger validation
# ---------------------------------------------------------------------------

def test_trigger_requires_triggered_source():
    env = Environment()
    source = env.event()
    target = env.event()
    with pytest.raises(SchedulingError, match="not been triggered"):
        target.trigger(source)
    assert not target.triggered


def test_trigger_rejects_already_triggered_target():
    env = Environment()
    source = env.event().succeed("x")
    target = env.event().succeed("y")
    with pytest.raises(SchedulingError, match="already been triggered"):
        target.trigger(source)
    assert target.value == "y"


def test_trigger_chains_success_state():
    env = Environment()
    source = env.event().succeed(41)
    target = env.event()
    target.trigger(source)
    env.run()
    assert target.ok and target.value == 41


def test_trigger_chains_failure_state():
    env = Environment()
    source = env.event()
    source.fail(ValueError("boom"))
    source.defuse()
    target = env.event()
    target.trigger(source)
    target.defuse()
    env.run()
    assert not target.ok and isinstance(target.value, ValueError)


# ---------------------------------------------------------------------------
# Single-callback slot
# ---------------------------------------------------------------------------

def test_callbacks_property_upgrades_scalar_slot():
    env = Environment()
    event = env.event()
    seen = []
    event.add_callback(lambda e: seen.append("a"))
    # Property access materialises the list view; registration order holds.
    event.callbacks.append(lambda e: seen.append("b"))
    event.add_callback(lambda e: seen.append("c"))
    event.succeed()
    env.run()
    assert seen == ["a", "b", "c"]


def test_callbacks_property_is_none_once_processed():
    env = Environment()
    event = env.event().succeed()
    env.run()
    assert event.processed
    assert event.callbacks is None
    with pytest.raises(SchedulingError):
        event.add_callback(lambda e: None)


def test_remove_callback_on_scalar_and_list_slots():
    env = Environment()
    seen = []

    def cb_a(event):
        seen.append("a")

    def cb_b(event):
        seen.append("b")

    scalar = env.event()
    scalar.add_callback(cb_a)
    scalar.remove_callback(cb_a)
    scalar.succeed()

    upgraded = env.event()
    upgraded.add_callback(cb_a)
    upgraded.add_callback(cb_b)
    upgraded.remove_callback(cb_a)
    upgraded.remove_callback(cb_a)  # no-op
    upgraded.succeed()

    env.run()
    assert seen == ["b"]


def test_multiple_waiters_on_one_event_all_resume():
    env = Environment()
    resumed = []

    def waiter(env, tag, gate):
        yield gate
        resumed.append(tag)

    gate = env.event()
    for tag in range(3):
        env.process(waiter(env, tag, gate))

    def opener(env, gate):
        yield env.timeout(1.0)
        gate.succeed()

    env.process(opener(env, gate))
    env.run()
    assert resumed == [0, 1, 2]
