"""Property-based tests of the discrete-event engine (hypothesis).

Invariants checked:

* simulated time never runs backwards, regardless of the schedule,
* a FIFO resource never exceeds its capacity and serves every requester,
* stores conserve items (everything put is eventually got, in order),
* condition events (AllOf) trigger exactly at the maximum child time.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.simkit import AllOf, Environment, Resource, Store

#: Keep the per-example simulations small so the suite stays fast.
_settings = settings(max_examples=40, deadline=None)

delays = st.lists(st.floats(min_value=0.0, max_value=10.0,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=20)


@_settings
@given(delays=delays)
def test_time_is_monotonic_under_arbitrary_timeouts(delays):
    env = Environment()
    observed = []

    def waiter(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert env.now == max(delays)


@_settings
@given(delays=delays)
def test_allof_triggers_at_latest_child(delays):
    env = Environment()
    finish = []

    def waiter(env):
        yield AllOf(env, [env.timeout(d) for d in delays])
        finish.append(env.now)

    env.process(waiter(env))
    env.run()
    assert finish == [max(delays)]


@_settings
@given(capacity=st.integers(min_value=1, max_value=5),
       holds=st.lists(st.floats(min_value=0.01, max_value=1.0,
                                allow_nan=False, allow_infinity=False),
                      min_size=1, max_size=15))
def test_resource_never_exceeds_capacity_and_serves_everyone(capacity, holds):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    served = []
    max_in_use = 0

    def user(env, resource, hold, tag):
        nonlocal max_in_use
        with resource.request() as req:
            yield req
            max_in_use = max(max_in_use, resource.count)
            yield env.timeout(hold)
            served.append(tag)

    for tag, hold in enumerate(holds):
        env.process(user(env, resource, hold, tag))
    env.run()
    assert max_in_use <= capacity
    assert sorted(served) == list(range(len(holds)))
    assert resource.count == 0


@_settings
@given(items=st.lists(st.integers(), min_size=1, max_size=30),
       capacity=st.integers(min_value=1, max_value=5))
def test_store_conserves_items_in_fifo_order(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer(env, store):
        for item in items:
            yield store.put(item)

    def consumer(env, store):
        for _ in range(len(items)):
            value = yield store.get()
            received.append(value)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == items
    assert len(store.items) == 0
