"""Unit tests for monitors and deterministic random streams."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.simkit import (BatchedUniform, Counter, Monitor, RandomStreams,
                          TimeSeries, derive_seed)


# ---------------------------------------------------------------------------
# Counter / TimeSeries / Monitor
# ---------------------------------------------------------------------------

def test_counter_increments_and_rejects_negative():
    counter = Counter("msgs")
    counter.increment()
    counter.increment(3)
    assert counter.value == 4
    with pytest.raises(ValueError):
        counter.increment(-1)


def test_counter_merge():
    a = Counter("msgs", 2)
    b = Counter("msgs", 5)
    a.merge(b)
    assert a.value == 7


def test_timeseries_statistics():
    ts = TimeSeries("rtt")
    for i, value in enumerate([1.0, 2.0, 3.0, 4.0]):
        ts.record(i, value)
    assert ts.mean() == pytest.approx(2.5)
    assert ts.median() == pytest.approx(2.5)
    assert ts.minimum() == 1.0
    assert ts.maximum() == 4.0
    assert len(ts) == 4
    assert ts.percentile(50) == pytest.approx(2.5)


def test_timeseries_empty_statistics_are_nan():
    ts = TimeSeries("rtt")
    assert np.isnan(ts.mean())
    assert np.isnan(ts.median())
    assert np.isnan(ts.minimum())
    assert np.isnan(ts.maximum())


def test_timeseries_cdf_monotone():
    ts = TimeSeries("rtt")
    rng = np.random.default_rng(0)
    for i, value in enumerate(rng.exponential(1.0, size=500)):
        ts.record(i, value)
    xs, ps = ts.cdf(points=50)
    assert len(xs) == 50
    assert np.all(np.diff(xs) >= 0)
    assert np.all(np.diff(ps) >= 0)
    assert ps[-1] == pytest.approx(1.0)


def test_timeseries_cdf_empty():
    ts = TimeSeries("rtt")
    xs, ps = ts.cdf()
    assert xs.size == 0 and ps.size == 0


def test_timeseries_merge():
    a = TimeSeries("rtt")
    b = TimeSeries("rtt")
    a.record(0, 1.0)
    b.record(1, 3.0)
    a.merge(b)
    assert a.mean() == pytest.approx(2.0)


def test_monitor_creates_and_reuses_instruments():
    mon = Monitor("consumer-0")
    mon.count("received")
    mon.count("received", 2)
    mon.record("rtt", 1.0, 0.02)
    assert mon.counter("received").value == 3
    assert mon.counters["received"] is mon.counter("received")
    assert len(mon.timeseries("rtt")) == 1


def test_monitor_merge_aggregates_all_children():
    a = Monitor("agg")
    b = Monitor("consumer-1")
    b.count("received", 10)
    b.record("rtt", 0.0, 1.0)
    a.merge(b)
    assert a.counter("received").value == 10
    assert len(a.timeseries("rtt")) == 1


def test_monitor_snapshot_shape():
    mon = Monitor("x")
    mon.count("received", 2)
    mon.record("rtt", 0.0, 0.5)
    snap = mon.snapshot()
    assert snap["counters"]["received"] == 2
    assert snap["series"]["rtt"]["count"] == 1


# ---------------------------------------------------------------------------
# RandomStreams
# ---------------------------------------------------------------------------

def test_derive_seed_deterministic_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_streams_are_reproducible_across_factories():
    a = RandomStreams(42).stream("producer", 0).random(5)
    b = RandomStreams(42).stream("producer", 0).random(5)
    assert np.allclose(a, b)


def test_streams_are_independent_per_component():
    streams = RandomStreams(42)
    a = streams.stream("producer", 0).random(5)
    b = streams.stream("producer", 1).random(5)
    assert not np.allclose(a, b)


def test_stream_is_cached():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_spawn_creates_independent_child_root():
    parent = RandomStreams(3)
    child = parent.spawn("run", 1)
    assert isinstance(child, RandomStreams)
    assert child.root_seed != parent.root_seed


def test_helper_draws_within_bounds():
    streams = RandomStreams(0)
    value = streams.uniform(1.0, 2.0, "jitter")
    assert 1.0 <= value <= 2.0
    assert streams.exponential(1.0, "gap") >= 0.0


# ---------------------------------------------------------------------------
# BatchedUniform
# ---------------------------------------------------------------------------

def _scalar_uniforms(seed, bounds):
    rng = np.random.default_rng(seed)
    return [rng.uniform(low, high) for low, high in bounds]


@pytest.mark.parametrize("batch", [1, 512, 509], ids=["one", "default", "prime"])
def test_batched_uniform_bit_identical_to_scalar_draws(batch):
    """Batched draws reproduce Generator.uniform bit-for-bit in the same
    global order, across multiple refill seams and varying bounds."""
    bounds = [(0.001 * i, 0.001 * i + 0.5 + 0.01 * (i % 7))
              for i in range(1300)]
    batched = BatchedUniform(np.random.default_rng(42), batch=batch)
    drawn = [batched.uniform(low, high) for low, high in bounds]
    assert drawn == _scalar_uniforms(42, bounds)


def test_batched_uniform_refill_seam_is_seamless():
    """Exhausting the buffer exactly at its boundary and drawing once more
    continues the underlying stream without skipping or repeating."""
    batch = 8
    batched = BatchedUniform(np.random.default_rng(7), batch=batch)
    for expected in np.random.default_rng(7).random(size=batch):
        assert batched.uniform(0.0, 1.0) == expected
    assert batched._idx == batch  # buffer exhausted, refill pending
    follow_up = np.random.default_rng(7)
    follow_up.random(size=batch)
    assert batched.uniform(0.0, 1.0) == follow_up.random(size=batch)[0]
    assert batched._idx == 1


def test_batched_uniform_rejects_bad_batch():
    with pytest.raises(ValueError):
        BatchedUniform(np.random.default_rng(0), batch=0)


def test_batched_uniform_pickles_mid_buffer():
    """Pickling preserves both the generator state and the buffer cursor,
    so a restored stream continues exactly where the original would."""
    twin = BatchedUniform(np.random.default_rng(11), batch=16)
    original = BatchedUniform(np.random.default_rng(11), batch=16)
    for _ in range(5):  # park the cursor mid-buffer
        twin.uniform(0.0, 1.0)
        original.uniform(0.0, 1.0)
    restored = pickle.loads(pickle.dumps(original))
    for _ in range(40):  # crosses the next refill seam too
        assert restored.uniform(0.0, 1.0) == twin.uniform(0.0, 1.0)
