"""Unit tests for the simkit event loop, processes and condition events."""

from __future__ import annotations

import pytest

from repro.simkit import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SchedulingError,
)
from repro.simkit.core import Event


def test_environment_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_environment_initial_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [2.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SchedulingError):
        env.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    ticks = []

    def ticker(env):
        while True:
            yield env.timeout(1.0)
            ticks.append(env.now)

    env.process(ticker(env))
    env.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(SchedulingError):
        env.run(until=5.0)


def test_process_return_value_via_run_until_event():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0)
        return 42

    proc = env.process(worker(env))
    result = env.run(until=proc)
    assert result == 42
    assert env.now == 1.0


def test_process_waits_for_other_process():
    env = Environment()
    order = []

    def child(env):
        yield env.timeout(2.0)
        order.append("child")
        return "payload"

    def parent(env):
        value = yield env.process(child(env))
        order.append("parent")
        assert value == "payload"

    env.process(parent(env))
    env.run()
    assert order == ["child", "parent"]


def test_event_succeed_and_value():
    env = Environment()
    event = env.event()
    results = []

    def waiter(env, event):
        value = yield event
        results.append(value)

    env.process(waiter(env, event))

    def trigger(env, event):
        yield env.timeout(1.0)
        event.succeed("hello")

    env.process(trigger(env, event))
    env.run()
    assert results == ["hello"]
    assert event.ok
    assert event.value == "hello"


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SchedulingError):
        event.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    seen = []

    def waiter(env, event):
        try:
            yield event
        except ValueError as exc:
            seen.append(str(exc))

    event = env.event()
    env.process(waiter(env, event))
    event.fail(ValueError("boom"))
    env.run()
    assert seen == ["boom"]


def test_unhandled_process_exception_surfaces_from_run():
    env = Environment()

    def crasher(env):
        yield env.timeout(1.0)
        raise RuntimeError("crash")

    env.process(crasher(env))
    with pytest.raises(RuntimeError, match="crash"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            causes.append(interrupt.cause)

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert causes == ["wake up"]


def test_interrupting_finished_process_is_an_error():
    env = Environment()

    def quick(env):
        yield env.timeout(0.1)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(Exception):
        proc.interrupt()


def test_allof_waits_for_all():
    env = Environment()
    done = []

    def waiter(env, events):
        yield AllOf(env, events)
        done.append(env.now)

    events = [env.timeout(1.0), env.timeout(3.0), env.timeout(2.0)]
    env.process(waiter(env, events))
    env.run()
    assert done == [3.0]


def test_anyof_fires_on_first():
    env = Environment()
    done = []

    def waiter(env, events):
        yield AnyOf(env, events)
        done.append(env.now)

    events = [env.timeout(5.0), env.timeout(2.0)]
    env.process(waiter(env, events))
    env.run()
    assert done == [2.0]


def test_all_of_env_helper_returns_values():
    env = Environment()
    collected = {}

    def waiter(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        result = yield env.all_of([t1, t2])
        collected.update({"values": list(result.values())})

    env.process(waiter(env))
    env.run()
    assert collected["values"] == ["a", "b"]


def test_yield_none_is_zero_delay():
    env = Environment()
    times = []

    def proc(env):
        times.append(env.now)
        yield None
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [0.0, 0.0]


def test_yield_non_event_raises_in_process():
    env = Environment()

    def proc(env):
        yield 123

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_simultaneous_events_preserve_fifo_order():
    env = Environment()
    order = []

    def make(tag):
        def proc(env):
            yield env.timeout(1.0)
            order.append(tag)
        return proc

    for tag in range(5):
        env.process(make(tag)(env))
    env.run()
    assert order == list(range(5))


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4.0)
    env.timeout(2.0)
    assert env.peek() == 2.0


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_run_until_already_processed_event_returns_value():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.run(until=proc) == "done"


def test_process_is_alive_lifecycle():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0)

    proc = env.process(worker(env))
    assert proc.is_alive
    env.run()
    assert not proc.is_alive


def test_condition_failure_propagates():
    env = Environment()
    failures = []

    def failer(env, event):
        yield env.timeout(1.0)
        event.fail(RuntimeError("bad"))

    def waiter(env, events):
        try:
            yield AllOf(env, events)
        except RuntimeError as exc:
            failures.append(str(exc))

    ev = env.event()
    env.process(failer(env, ev))
    env.process(waiter(env, [ev, env.timeout(5.0)]))
    env.run()
    assert failures == ["bad"]


def test_empty_allof_triggers_immediately():
    env = Environment()
    hit = []

    def waiter(env):
        yield AllOf(env, [])
        hit.append(env.now)

    env.process(waiter(env))
    env.run()
    assert hit == [0.0]


def test_event_repr_and_pending_value_access():
    env = Environment()
    event = env.event()
    assert not event.triggered
    with pytest.raises(AttributeError):
        _ = event.value
    with pytest.raises(AttributeError):
        _ = event.ok


def test_fail_requires_exception_instance():
    env = Environment()
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_nested_processes_chain_return_values():
    env = Environment()

    def inner(env):
        yield env.timeout(1.0)
        return 10

    def middle(env):
        value = yield env.process(inner(env))
        return value * 2

    def outer(env):
        value = yield env.process(middle(env))
        return value + 1

    proc = env.process(outer(env))
    assert env.run(until=proc) == 21
