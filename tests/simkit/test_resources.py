"""Unit tests for simkit resources, containers and stores."""

from __future__ import annotations

import pytest

from repro.simkit import Container, Environment, FilterStore, PriorityResource, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def user(env, res, hold, tag):
        with res.request() as req:
            yield req
            granted.append((tag, env.now))
            yield env.timeout(hold)

    env.process(user(env, res, 2.0, "a"))
    env.process(user(env, res, 2.0, "b"))
    env.process(user(env, res, 2.0, "c"))
    env.run()
    times = dict((tag, t) for tag, t in granted)
    assert times["a"] == 0.0
    assert times["b"] == 0.0
    assert times["c"] == 2.0


def test_resource_count_and_queue():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(5.0)

    def waiter(env, res):
        with res.request() as req:
            yield req

    env.process(holder(env, res))
    env.process(waiter(env, res))
    env.run(until=1.0)
    assert res.count == 1
    assert len(res.queue) == 1
    env.run()
    assert res.count == 0


def test_resource_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1.0)

    for tag in range(4):
        env.process(user(env, res, tag))
    env.run()
    assert order == [0, 1, 2, 3]


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(1.0)

    def user(env, res, priority, tag):
        # Arrive slightly after the holder so all requests queue.
        yield env.timeout(0.1)
        with res.request(priority=priority) as req:
            yield req
            order.append(tag)
            yield env.timeout(0.5)

    env.process(holder(env, res))
    env.process(user(env, res, 5, "low"))
    env.process(user(env, res, 1, "high"))
    env.process(user(env, res, 3, "mid"))
    env.run()
    assert order == ["high", "mid", "low"]


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------

def test_container_put_get_levels():
    env = Environment()
    tank = Container(env, capacity=100.0, init=10.0)

    def producer(env, tank):
        yield tank.put(40.0)

    def consumer(env, tank):
        yield tank.get(25.0)

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert tank.level == pytest.approx(25.0)


def test_container_get_blocks_until_available():
    env = Environment()
    tank = Container(env, capacity=100.0, init=0.0)
    got = []

    def consumer(env, tank):
        yield tank.get(10.0)
        got.append(env.now)

    def producer(env, tank):
        yield env.timeout(3.0)
        yield tank.put(10.0)

    env.process(consumer(env, tank))
    env.process(producer(env, tank))
    env.run()
    assert got == [3.0]


def test_container_put_blocks_when_full():
    env = Environment()
    tank = Container(env, capacity=10.0, init=10.0)
    done = []

    def producer(env, tank):
        yield tank.put(5.0)
        done.append(env.now)

    def consumer(env, tank):
        yield env.timeout(2.0)
        yield tank.get(6.0)

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert done == [2.0]


def test_container_rejects_bad_arguments():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=-1)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)


# ---------------------------------------------------------------------------
# Store / FilterStore
# ---------------------------------------------------------------------------

def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env, store):
        for item in ["a", "b", "c"]:
            yield store.put(item)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == ["a", "b", "c"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env, store):
        yield store.get()
        times.append(env.now)

    def producer(env, store):
        yield env.timeout(4.0)
        yield store.put("x")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert times == [4.0]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    done = []

    def producer(env, store):
        yield store.put(1)
        yield store.put(2)
        done.append(env.now)

    def consumer(env, store):
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert done == [5.0]


def test_store_try_put_and_try_get():
    env = Environment()
    store = Store(env, capacity=1)
    assert store.try_put("a") is True
    assert store.try_put("b") is False
    ok, item = store.try_get()
    assert ok and item == "a"
    ok, item = store.try_get()
    assert not ok and item is None


def test_store_len():
    env = Environment()
    store = Store(env)
    store.try_put(1)
    store.try_put(2)
    assert len(store) == 2


def test_filter_store_selects_matching_item():
    env = Environment()
    store = FilterStore(env)
    received = []

    def producer(env, store):
        yield store.put({"key": 1})
        yield store.put({"key": 2})

    def consumer(env, store):
        item = yield store.get(lambda m: m["key"] == 2)
        received.append(item["key"])

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == [2]
    assert list(store.items) == [{"key": 1}]


def test_filter_store_blocked_get_does_not_block_other_gets():
    env = Environment()
    store = FilterStore(env)
    received = []

    def consumer(env, store, key, tag):
        item = yield store.get(lambda m, key=key: m == key)
        received.append((tag, item, env.now))

    def producer(env, store):
        yield env.timeout(1.0)
        yield store.put("b")
        yield env.timeout(1.0)
        yield store.put("a")

    env.process(consumer(env, store, "a", "first"))
    env.process(consumer(env, store, "b", "second"))
    env.process(producer(env, store))
    env.run()
    assert ("second", "b", 1.0) in received
    assert ("first", "a", 2.0) in received


def test_store_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)
