"""Unit tests for classic queue dispatch, prefetch, acks and overflow."""

from __future__ import annotations

import pytest

from repro.simkit import Environment
from repro.netsim import MessageFactory
from repro.amqp import OverflowPolicy, QueuePolicy
from repro.amqp.queue import ClassicQueue


def make_messages(n, payload=1024):
    factory = MessageFactory("prod")
    return [factory.create(payload, now=0.0, routing_key="q") for _ in range(n)]


def collector(env, received, delay=0.0, tag=None):
    """Build a deliver function appending (tag, message) to ``received``."""

    def deliver(message):
        if delay:
            yield env.timeout(delay)
        else:
            yield env.timeout(0)
        received.append((tag, message))

    return deliver


def test_publish_and_single_consumer_delivery():
    env = Environment()
    queue = ClassicQueue(env, "q")
    received = []
    queue.subscribe("c1", collector(env, received, tag="c1"))
    for msg in make_messages(3):
        outcome = queue.publish(msg)
        assert outcome.accepted
    env.run()
    assert len(received) == 3
    assert queue.delivered == 3
    assert queue.ready_count == 0


def test_round_robin_across_consumers():
    env = Environment()
    queue = ClassicQueue(env, "q")
    received = []
    queue.subscribe("c1", collector(env, received, tag="c1"))
    queue.subscribe("c2", collector(env, received, tag="c2"))
    for msg in make_messages(6):
        queue.publish(msg)
    env.run()
    tags = [tag for tag, _ in received]
    assert tags.count("c1") == 3
    assert tags.count("c2") == 3


def test_prefetch_limits_outstanding_deliveries():
    env = Environment()
    queue = ClassicQueue(env, "q")
    received = []
    queue.subscribe("c1", collector(env, received, tag="c1"), prefetch=2)
    for msg in make_messages(5):
        queue.publish(msg)
    env.run()
    # Without acks, only the prefetch window is ever delivered.
    assert len(received) == 2
    assert queue.ready_count == 3
    assert queue.unacked_count == 2


def test_ack_returns_credit_and_resumes_dispatch():
    env = Environment()
    queue = ClassicQueue(env, "q")
    received = []

    def deliver(message):
        yield env.timeout(0)
        received.append(message)

    queue.subscribe("c1", deliver, prefetch=1)
    for msg in make_messages(3):
        queue.publish(msg)

    def acker(env):
        while queue.acked < 3:
            yield env.timeout(0.01)
            if received and queue.unacked_count:
                last = received[-1]
                queue.ack(last.headers["delivery_tag"])

    env.process(acker(env))
    env.run()
    assert len(received) == 3
    assert queue.acked == 3
    assert queue.unacked_count == 0


def test_cumulative_ack_multiple_true():
    env = Environment()
    queue = ClassicQueue(env, "q")
    received = []
    queue.subscribe("c1", collector(env, received, tag="c1"), prefetch=0)
    for msg in make_messages(4):
        queue.publish(msg)
    env.run()
    tags = [m.headers["delivery_tag"] for _, m in received]
    settled = queue.ack(max(tags), multiple=True)
    assert settled == 4
    assert queue.unacked_count == 0


def test_ack_unknown_tag_is_noop():
    env = Environment()
    queue = ClassicQueue(env, "q")
    assert queue.ack(999) == 0


def test_reject_publish_when_full():
    env = Environment()
    policy = QueuePolicy(max_length=2, overflow=OverflowPolicy.REJECT_PUBLISH)
    queue = ClassicQueue(env, "q", policy=policy)
    msgs = make_messages(3)
    assert queue.publish(msgs[0]).accepted
    assert queue.publish(msgs[1]).accepted
    outcome = queue.publish(msgs[2])
    assert not outcome.accepted
    assert outcome.reason == "queue-full"
    assert queue.rejected == 1


def test_drop_head_overflow_keeps_newest():
    env = Environment()
    policy = QueuePolicy(max_length=2, overflow=OverflowPolicy.DROP_HEAD)
    queue = ClassicQueue(env, "q", policy=policy)
    msgs = make_messages(3)
    for msg in msgs:
        assert queue.publish(msg).accepted
    assert queue.ready_count == 2
    remaining_ids = [m.message_id for m in queue._ready]
    assert msgs[0].message_id not in remaining_ids
    assert msgs[2].message_id in remaining_ids


def test_byte_limit_enforced():
    env = Environment()
    policy = QueuePolicy(max_length=0, max_length_bytes=2048)
    queue = ClassicQueue(env, "q", policy=policy)
    msgs = make_messages(3, payload=1024)
    assert queue.publish(msgs[0]).accepted
    assert queue.publish(msgs[1]).accepted
    assert not queue.publish(msgs[2]).accepted


def test_nack_requeue_puts_message_back_at_head():
    env = Environment()
    queue = ClassicQueue(env, "q")
    received = []
    queue.subscribe("c1", collector(env, received, tag="c1"), prefetch=1)
    msgs = make_messages(1)
    queue.publish(msgs[0])
    env.run()
    assert len(received) == 1
    tag = received[0][1].headers["delivery_tag"]
    assert queue.nack_requeue(tag) is True
    assert queue.ready_count == 1
    assert queue.unacked_count == 0
    assert queue.nack_requeue(tag) is False


def test_cancel_consumer_stops_dispatch_to_it():
    env = Environment()
    queue = ClassicQueue(env, "q")
    received = []
    queue.subscribe("c1", collector(env, received, tag="c1"))
    queue.cancel("c1")
    for msg in make_messages(2):
        queue.publish(msg)
    env.run(until=1.0)
    assert received == []
    assert queue.ready_count == 2
    assert queue.consumer_count == 0


def test_duplicate_consumer_tag_rejected():
    env = Environment()
    queue = ClassicQueue(env, "q")
    queue.subscribe("c1", collector(env, [], tag="c1"))
    with pytest.raises(ValueError):
        queue.subscribe("c1", collector(env, [], tag="c1"))


def test_messages_delivered_before_subscription_wait_in_queue():
    env = Environment()
    queue = ClassicQueue(env, "q")
    for msg in make_messages(2):
        queue.publish(msg)
    env.run(until=0.5)
    assert queue.ready_count == 2
    received = []
    queue.subscribe("late", collector(env, received, tag="late"))
    env.run()
    assert len(received) == 2


def test_depth_counts_ready_plus_unacked():
    env = Environment()
    queue = ClassicQueue(env, "q")
    received = []
    queue.subscribe("c1", collector(env, received, tag="c1"), prefetch=1)
    for msg in make_messages(3):
        queue.publish(msg)
    env.run()
    assert queue.depth == 3  # 1 unacked + 2 ready
    assert queue.published == 3


def test_published_at_timestamp_set():
    env = Environment()
    queue = ClassicQueue(env, "q")
    msg = make_messages(1)[0]

    def later(env):
        yield env.timeout(2.0)
        queue.publish(msg)

    env.process(later(env))
    env.run()
    assert msg.published_at == pytest.approx(2.0)
