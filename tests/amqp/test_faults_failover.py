"""Broker failure, queue failover and down-broker publish/relay semantics.

Regression suite for the fault-injection layer's AMQP substrate: killing a
broker re-leaders its queues onto survivors (messages travel with the
queue), publishes aimed at a down broker resolve per the destination
queue's overflow policy (requeue-or-record), a mid-relay death loses the
in-flight copy the same way, and consumer-side relay failures pace a
retry then return the delivery to the queue.
"""

from __future__ import annotations

import pytest

from repro.amqp import (
    Broker,
    BrokerCluster,
    OverflowPolicy,
    QueuePolicy,
)
from repro.netsim import MessageFactory, Network, units
from repro.simkit import Environment


def build_cluster(env, n_brokers=3, *, latency_s=0.0001):
    net = Network(env, "ace")
    for i in range(n_brokers):
        net.add_node(f"dsn{i+1}", role="dsn")
    for i in range(n_brokers):
        for j in range(i + 1, n_brokers):
            net.connect(f"dsn{i+1}", f"dsn{j+1}",
                        bandwidth_bps=units.gbps(10), latency_s=latency_s)
    brokers = [Broker(env, f"rmqs{i+1}", net.get_node(f"dsn{i+1}"))
               for i in range(n_brokers)]
    cluster = BrokerCluster(env, "rabbitmq", brokers, net)
    return net, brokers, cluster


def msg(payload=units.kib(16), key="work"):
    return MessageFactory("prod").create(payload, now=0.0, routing_key=key)


# ---------------------------------------------------------------------------
# kill_broker / revive_broker
# ---------------------------------------------------------------------------

def test_kill_broker_re_leaders_queues_and_messages_survive():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    cluster.declare_queue("q1", leader=brokers[1])
    cluster.get_queue("q1").publish(msg(key="q1"))

    moved = cluster.kill_broker(brokers[1])

    assert moved == ["q1"]
    assert not brokers[1].up
    # Survivors are taken in broker order: rmqs1 gets the first queue.
    assert cluster.queue_leader("q1") is brokers[0]
    # The message moved with the queue object.
    assert cluster.get_queue("q1").ready_count == 1
    assert "q1" not in brokers[1].queues
    assert cluster.monitor.counter("failovers").value == 1


def test_kill_broker_spreads_queues_round_robin_over_survivors():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    for name in ("qa", "qb", "qc"):
        cluster.declare_queue(name, leader=brokers[1])

    moved = cluster.kill_broker("rmqs2")

    assert moved == ["qa", "qb", "qc"]  # sorted, deterministic
    leaders = [cluster.queue_leader(name).name for name in moved]
    assert leaders == ["rmqs1", "rmqs3", "rmqs1"]


def test_kill_broker_twice_is_idempotent():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    cluster.declare_queue("q1", leader=brokers[1])
    assert cluster.kill_broker(brokers[1]) == ["q1"]
    assert cluster.kill_broker(brokers[1]) == []


def test_kill_last_broker_leaves_queues_in_place():
    env = Environment()
    _, brokers, cluster = build_cluster(env, 1)
    cluster.declare_queue("q1")
    assert cluster.kill_broker(brokers[0]) == []
    assert cluster.queue_leader("q1") is brokers[0]
    cluster.revive_broker(brokers[0])
    assert brokers[0].up


# ---------------------------------------------------------------------------
# publish against down brokers
# ---------------------------------------------------------------------------

def test_publish_via_down_entry_broker_is_refused():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    cluster.declare_queue("q1", leader=brokers[0])
    cluster.kill_broker(brokers[0])

    def proc(env):
        return (yield from cluster.publish(brokers[0], msg(key="q1"), "", "q1"))

    outcomes = env.run(until=env.process(proc(env)))
    assert len(outcomes) == 1
    assert not outcomes[0].accepted
    assert outcomes[0].reason == "broker-down"
    assert cluster.monitor.counter("entry_broker_down").value == 1


def test_publish_to_down_leader_resolves_per_queue_policy():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    cluster.declare_queue("qreject", leader=brokers[1])
    cluster.declare_queue("qdrop", leader=brokers[1],
                          policy=QueuePolicy(max_length=100,
                                             overflow=OverflowPolicy.DROP_HEAD))
    # Fail the broker directly (no failover): the instant between a crash
    # and the cluster re-leadering its queues.
    brokers[1].fail()

    def proc(env):
        first = yield from cluster.publish(brokers[0], msg(key="qreject"),
                                           "", "qreject")
        second = yield from cluster.publish(brokers[0], msg(key="qdrop"),
                                            "", "qdrop")
        return first, second

    rejected, dropped = env.run(until=env.process(proc(env)))
    # Reject-publish queue: nack, so the producer backs off and retries.
    assert [(o.accepted, o.reason) for o in rejected] == \
        [(False, "broker-down")]
    # Drop-head queue is lossy by contract: the loss is recorded, the
    # producer proceeds.
    assert [(o.accepted, o.reason) for o in dropped] == \
        [(True, "broker-down-dropped")]
    assert cluster.monitor.counter("rejected_broker_down").value == 1
    assert cluster.monitor.counter("dropped_broker_down").value == 1


def test_publish_leader_dies_mid_relay_records_loss():
    env = Environment()
    _, brokers, cluster = build_cluster(env, latency_s=0.01)
    cluster.declare_queue("q1", leader=brokers[1])

    def killer(env):
        # Land inside the 10 ms relay traversal, after the publish started.
        yield env.timeout(0.005)
        brokers[1].fail()

    def proc(env):
        return (yield from cluster.publish(brokers[0], msg(key="q1"), "", "q1"))

    env.process(killer(env))
    outcomes = env.run(until=env.process(proc(env)))
    assert [(o.accepted, o.reason) for o in outcomes] == \
        [(False, "broker-down")]
    assert cluster.monitor.counter("relay_failures").value == 1
    assert cluster.get_queue("q1").ready_count == 0


def test_publish_mid_relay_failover_records_against_new_leader():
    """The queue fails over while the relay is in flight: the loss is
    resolved against the queue's *current* leader, and the producer's
    retry lands on the survivor."""
    env = Environment()
    _, brokers, cluster = build_cluster(env, latency_s=0.01)
    cluster.declare_queue("q1", leader=brokers[1])

    def killer(env):
        yield env.timeout(0.005)
        # Full failover, not just a crash: q1 moves to a survivor while
        # the published copy is still crossing the inter-broker link.
        assert cluster.kill_broker(brokers[1]) == ["q1"]

    def proc(env):
        first = yield from cluster.publish(brokers[0], msg(key="q1"),
                                           "", "q1")
        retry = yield from cluster.publish(brokers[0], msg(key="q1"),
                                           "", "q1")
        return first, retry

    env.process(killer(env))
    first, retry = env.run(until=env.process(proc(env)))
    assert [(o.accepted, o.reason) for o in first] == [(False, "broker-down")]
    assert retry[0].accepted
    assert cluster.queue_leader("q1") is brokers[0]
    assert cluster.get_queue("q1").ready_count == 1


# ---------------------------------------------------------------------------
# consumer-side relay failure
# ---------------------------------------------------------------------------

def test_consumer_relay_failure_requeues_then_redelivers_after_recovery():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    cluster.declare_queue("q1", leader=brokers[0])
    received = []

    def deliver(message):
        yield env.timeout(0)
        received.append(message)

    cluster.subscribe("q1", "c1", deliver, consumer_broker=brokers[2],
                      prefetch=0)
    brokers[2].fail()

    def reviver(env):
        yield env.timeout(0.05)
        brokers[2].recover()

    def proc(env):
        return (yield from cluster.publish(brokers[0], msg(key="q1"), "", "q1"))

    env.process(reviver(env))
    env.run(until=env.process(proc(env)))
    env.run()
    # Redelivery attempts against the down broker were paced by the retry
    # backoff, then the recovery let the delivery through exactly once.
    assert len(received) == 1
    assert cluster.monitor.counter("relay_failures").value >= 1
    assert cluster.ack("q1", received[0].headers["delivery_tag"]) == 1


# ---------------------------------------------------------------------------
# cancel(requeue=True) — the consumer-churn primitive
# ---------------------------------------------------------------------------

def test_cancel_with_requeue_restores_queue_order():
    env = Environment()
    _, brokers, cluster = build_cluster(env, 1)
    cluster.declare_queue("q1")
    queue = cluster.get_queue("q1")
    published = [msg(key="q1") for _ in range(3)]
    for message in published:
        queue.publish(message)

    first_pass = []

    def hold(message):  # consume without acking
        yield env.timeout(0)
        first_pass.append(message)

    queue.subscribe("c1", hold, prefetch=0)
    env.run()
    assert [m.message_id for m in first_pass] == \
        [m.message_id for m in published]
    assert queue.ready_count == 0

    requeued = queue.cancel("c1", requeue=True)
    assert requeued == 3
    assert queue.ready_count == 3

    second_pass = []

    def take(message):
        yield env.timeout(0)
        second_pass.append(message)

    queue.subscribe("c2", take, prefetch=0)
    env.run()
    # Redelivery preserves the original publish order.
    assert [m.message_id for m in second_pass] == \
        [m.message_id for m in published]


def test_cancel_without_requeue_drops_unacked():
    env = Environment()
    _, brokers, cluster = build_cluster(env, 1)
    cluster.declare_queue("q1")
    queue = cluster.get_queue("q1")
    queue.publish(msg(key="q1"))

    def hold(message):
        yield env.timeout(0)

    queue.subscribe("c1", hold, prefetch=0)
    env.run()
    assert queue.cancel("c1") == 0
    assert queue.ready_count == 0
