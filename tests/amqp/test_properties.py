"""Property-based tests of the AMQP substrate (hypothesis).

Invariants checked:

* message conservation in a classic queue: every accepted publish is either
  still ready, unacknowledged, or acknowledged — nothing is lost or
  duplicated, for any interleaving of sizes and for any prefetch setting,
* the overflow policy never admits more than ``max_length`` ready messages,
* exchange routing is deterministic and fanout reaches every bound queue.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.amqp import ExchangeType, QueuePolicy
from repro.amqp.exchange import Exchange
from repro.amqp.queue import ClassicQueue
from repro.netsim import MessageFactory
from repro.simkit import Environment

_settings = settings(max_examples=30, deadline=None)


@_settings
@given(payloads=st.lists(st.integers(min_value=1, max_value=10_000),
                         min_size=1, max_size=40),
       prefetch=st.integers(min_value=0, max_value=10),
       consumers=st.integers(min_value=1, max_value=4))
def test_queue_conserves_messages(payloads, prefetch, consumers):
    env = Environment()
    queue = ClassicQueue(env, "q")
    factory = MessageFactory("prod")
    delivered = []

    def deliver(message):
        yield env.timeout(0.001)
        delivered.append(message)
        # Acknowledge immediately so credit keeps flowing.
        queue.ack(message.headers["delivery_tag"])

    for index in range(consumers):
        queue.subscribe(f"c{index}", deliver, prefetch=prefetch)

    accepted = 0
    for payload in payloads:
        outcome = queue.publish(factory.create(payload, now=0.0, routing_key="q"))
        if outcome.accepted:
            accepted += 1
    env.run()

    assert accepted == len(payloads)
    # Conservation: accepted = acked + unacked + ready.
    assert accepted == queue.acked + queue.unacked_count + queue.ready_count
    # With immediate acks everything must eventually drain.
    assert queue.ready_count == 0
    assert queue.unacked_count == 0
    assert len(delivered) == accepted


@_settings
@given(max_length=st.integers(min_value=1, max_value=10),
       publishes=st.integers(min_value=1, max_value=40))
def test_reject_publish_never_exceeds_max_length(max_length, publishes):
    env = Environment()
    queue = ClassicQueue(env, "q", policy=QueuePolicy(max_length=max_length))
    factory = MessageFactory("prod")
    accepted = rejected = 0
    for _ in range(publishes):
        outcome = queue.publish(factory.create(100, now=0.0, routing_key="q"))
        if outcome.accepted:
            accepted += 1
        else:
            rejected += 1
        assert queue.ready_count <= max_length
    assert accepted == min(publishes, max_length)
    assert accepted + rejected == publishes


@_settings
@given(keys=st.lists(st.sampled_from(["work-0", "work-1", "other"]),
                     min_size=1, max_size=20))
def test_direct_exchange_routing_is_deterministic(keys):
    ex = Exchange("jobs", ExchangeType.DIRECT)
    ex.bind("q0", "work-0")
    ex.bind("q1", "work-1")
    for key in keys:
        first = ex.route(key)
        second = ex.route(key)
        assert first == second
        if key == "other":
            assert first == []
        else:
            assert first == [f"q{key[-1]}"]


@_settings
@given(queue_count=st.integers(min_value=1, max_value=10),
       routing_key=st.text(max_size=10))
def test_fanout_reaches_every_bound_queue(queue_count, routing_key):
    ex = Exchange("bcast", ExchangeType.FANOUT)
    names = [f"q{i}" for i in range(queue_count)]
    for name in names:
        ex.bind(name)
    assert ex.route(routing_key) == names
