"""Unit tests for exchanges, bindings and queue/memory/ack policies."""

from __future__ import annotations

import pytest

from repro.amqp import ExchangeType, OverflowPolicy, QueuePolicy, MemoryPolicy, AckPolicy
from repro.amqp.exchange import Exchange, _topic_matches


# ---------------------------------------------------------------------------
# Exchange routing
# ---------------------------------------------------------------------------

def test_direct_exchange_routes_by_exact_key():
    ex = Exchange("jobs", ExchangeType.DIRECT)
    ex.bind("q1", "work")
    ex.bind("q2", "work")
    ex.bind("q3", "other")
    assert ex.route("work") == ["q1", "q2"]
    assert ex.route("other") == ["q3"]
    assert ex.route("missing") == []


def test_fanout_exchange_ignores_routing_key():
    ex = Exchange("bcast", ExchangeType.FANOUT)
    ex.bind("q1")
    ex.bind("q2", "whatever")
    assert ex.route("anything") == ["q1", "q2"]


def test_fanout_deduplicates_queues():
    ex = Exchange("bcast", ExchangeType.FANOUT)
    ex.bind("q1", "a")
    ex.bind("q1", "b")
    assert ex.route("x") == ["q1"]


def test_bind_is_idempotent():
    ex = Exchange("jobs")
    ex.bind("q1", "work")
    ex.bind("q1", "work")
    assert len(ex.bindings) == 1


def test_unbind_removes_binding():
    ex = Exchange("jobs")
    ex.bind("q1", "work")
    ex.unbind("q1", "work")
    assert ex.route("work") == []


def test_topic_exchange_wildcards():
    ex = Exchange("events", ExchangeType.TOPIC)
    ex.bind("all", "#")
    ex.bind("detector", "detector.*")
    ex.bind("greta_events", "detector.greta.events")
    assert set(ex.route("detector.greta.events")) == {"all", "greta_events"}
    assert set(ex.route("detector.lcls")) == {"all", "detector"}
    assert ex.route("beamline.status") == ["all"]


@pytest.mark.parametrize("pattern,key,expected", [
    ("#", "a.b.c", True),
    ("#", "", True),
    ("*", "a", True),
    ("*", "a.b", False),
    ("a.*", "a.b", True),
    ("a.*", "a.b.c", False),
    ("a.#", "a", True),
    ("a.#", "a.b.c.d", True),
    ("a.#.z", "a.z", True),
    ("a.#.z", "a.b.c.z", True),
    ("a.#.z", "a.b.c", False),
    ("a.b", "a.b", True),
    ("a.b", "a.c", False),
])
def test_topic_match_table(pattern, key, expected):
    assert _topic_matches(pattern, key) is expected


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

def test_queue_policy_accepts_within_limits():
    policy = QueuePolicy(max_length=2, max_length_bytes=100)
    assert policy.accepts(0, 0, 50)
    assert policy.accepts(1, 50, 50)
    assert not policy.accepts(2, 50, 10)      # length limit
    assert not policy.accepts(1, 80, 30)      # byte limit


def test_queue_policy_unlimited_by_default_zero():
    policy = QueuePolicy(max_length=0, max_length_bytes=0)
    assert policy.accepts(10**6, 10**12, 10**9)


def test_memory_policy_split():
    policy = MemoryPolicy(total_bytes=100.0, data_fraction=0.8)
    assert policy.data_bytes == pytest.approx(80.0)
    assert policy.control_bytes == pytest.approx(20.0)
    assert policy.budget_for(is_control=True) == pytest.approx(20.0)
    assert policy.budget_for(is_control=False) == pytest.approx(80.0)


def test_overflow_policy_values():
    assert OverflowPolicy.REJECT_PUBLISH.value == "reject-publish"
    assert OverflowPolicy.DROP_HEAD.value == "drop-head"


def test_ack_policy_defaults():
    policy = AckPolicy()
    assert policy.consumer_batch > 0
    assert policy.publisher_batch > 0
    assert policy.prefetch_count > 0
