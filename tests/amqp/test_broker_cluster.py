"""Unit tests for the broker, the 3-node cluster and inter-broker relays."""

from __future__ import annotations

import pytest

from repro.simkit import Environment
from repro.netsim import MessageFactory, Network
from repro.netsim import units
from repro.amqp import (
    Broker,
    BrokerCluster,
    ExchangeType,
    MemoryPolicy,
    QueuePolicy,
)


def build_cluster(env, n_brokers=3):
    """A minimal DSN network with one broker per DSN."""
    net = Network(env, "ace")
    for i in range(n_brokers):
        net.add_node(f"dsn{i+1}", role="dsn")
    for i in range(n_brokers):
        for j in range(i + 1, n_brokers):
            net.connect(f"dsn{i+1}", f"dsn{j+1}", bandwidth_bps=units.gbps(10),
                        latency_s=0.0001)
    brokers = [Broker(env, f"rmqs{i+1}", net.get_node(f"dsn{i+1}"))
               for i in range(n_brokers)]
    cluster = BrokerCluster(env, "rabbitmq", brokers, net)
    return net, brokers, cluster


def msg(payload=units.kib(16), key="work"):
    return MessageFactory("prod").create(payload, now=0.0, routing_key=key)


# ---------------------------------------------------------------------------
# Broker
# ---------------------------------------------------------------------------

def test_broker_declare_queue_binds_default_exchange():
    env = Environment()
    _, brokers, _ = build_cluster(env, 1)
    broker = brokers[0]
    broker.declare_queue("q1")
    assert broker.route("", "q1") == ["q1"]


def test_broker_declare_exchange_conflicting_type_rejected():
    env = Environment()
    _, brokers, _ = build_cluster(env, 1)
    broker = brokers[0]
    broker.declare_exchange("e", ExchangeType.DIRECT)
    with pytest.raises(ValueError):
        broker.declare_exchange("e", ExchangeType.FANOUT)


def test_broker_publish_local_routes_to_queue():
    env = Environment()
    _, brokers, _ = build_cluster(env, 1)
    broker = brokers[0]
    broker.declare_queue("q1")

    def proc(env):
        outcomes = yield from broker.publish_local(msg(key="q1"), "", "q1")
        return outcomes

    outcomes = env.run(until=env.process(proc(env)))
    assert len(outcomes) == 1 and outcomes[0].accepted
    assert broker.queues["q1"].ready_count == 1


def test_broker_publish_unroutable_returns_empty():
    env = Environment()
    _, brokers, _ = build_cluster(env, 1)
    broker = brokers[0]

    def proc(env):
        return (yield from broker.publish_local(msg(key="nope"), "", "nope"))

    outcomes = env.run(until=env.process(proc(env)))
    assert outcomes == []
    assert broker.monitor.counter("unroutable").value == 1


def test_broker_unknown_exchange_raises():
    env = Environment()
    _, brokers, _ = build_cluster(env, 1)
    with pytest.raises(KeyError):
        brokers[0].route("missing", "key")


def test_broker_memory_pressure_blocks_data_publishes():
    env = Environment()
    _, brokers, _ = build_cluster(env, 1)
    broker = brokers[0]
    broker.memory_policy = MemoryPolicy(total_bytes=units.kib(64), data_fraction=0.5)
    broker.declare_queue("q1", policy=QueuePolicy())  # unbounded queue

    def fill(env):
        # Fill beyond the 32 KiB data budget with 16 KiB messages.
        for _ in range(3):
            yield from broker.publish_local(msg(key="q1"), "", "q1")
        return (yield from broker.publish_local(msg(key="q1"), "", "q1"))

    outcomes = env.run(until=env.process(fill(env)))
    assert not outcomes[0].accepted
    assert outcomes[0].reason == "memory-watermark"
    assert broker.memory_pressure()


def test_broker_control_queue_uses_control_budget():
    env = Environment()
    _, brokers, _ = build_cluster(env, 1)
    broker = brokers[0]
    broker.declare_queue("ctrl", is_control=True)
    broker.queues["ctrl"].publish(msg(payload=1024, key="ctrl"))
    assert broker.memory_used(control=True) == pytest.approx(1024)
    assert broker.memory_used(control=False) == 0.0


def test_broker_describe_and_depths():
    env = Environment()
    _, brokers, _ = build_cluster(env, 1)
    broker = brokers[0]
    broker.declare_queue("q1")
    broker.queues["q1"].publish(msg(key="q1"))
    assert broker.queue_depths()["q1"] == 1
    assert broker.describe()["host"] == "dsn1"


# ---------------------------------------------------------------------------
# BrokerCluster
# ---------------------------------------------------------------------------

def test_cluster_requires_brokers():
    env = Environment()
    net = Network(env)
    with pytest.raises(ValueError):
        BrokerCluster(env, "empty", [], net)


def test_cluster_round_robin_queue_placement():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    cluster.declare_queue("q1")
    cluster.declare_queue("q2")
    cluster.declare_queue("q3")
    cluster.declare_queue("q4")
    leaders = [cluster.queue_leader(f"q{i}").name for i in range(1, 5)]
    assert leaders == ["rmqs1", "rmqs2", "rmqs3", "rmqs1"]


def test_cluster_declare_queue_idempotent():
    env = Environment()
    _, _, cluster = build_cluster(env)
    q1 = cluster.declare_queue("q1")
    q2 = cluster.declare_queue("q1")
    assert q1 is q2


def test_cluster_client_assignment_round_robin():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    assigned = [cluster.assign_client_broker().name for _ in range(4)]
    assert assigned == ["rmqs1", "rmqs2", "rmqs3", "rmqs1"]


def test_cluster_publish_relays_to_leader():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    cluster.declare_queue("q1", leader=brokers[1])
    cluster.declare_exchange("jobs", ExchangeType.DIRECT)
    cluster.bind_queue("jobs", "q1", "work")
    message = msg()

    def proc(env):
        return (yield from cluster.publish(brokers[0], message, "jobs", "work"))

    outcomes = env.run(until=env.process(proc(env)))
    assert outcomes[0].accepted
    assert cluster.get_queue("q1").ready_count == 1
    assert cluster.monitor.counter("interbroker_messages").value == 1
    # The relay shows up in the message's hop trace.
    assert any("dsn1->dsn2" == hop.element for hop in message.hops)


def test_cluster_publish_local_leader_has_no_relay():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    cluster.declare_queue("q1", leader=brokers[0])
    message = msg(key="q1")

    def proc(env):
        return (yield from cluster.publish(brokers[0], message, "", "q1"))

    outcomes = env.run(until=env.process(proc(env)))
    assert outcomes[0].accepted
    assert "interbroker_messages" not in cluster.monitor.counters


def test_cluster_fanout_copies_to_all_queues():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    cluster.declare_exchange("bcast", ExchangeType.FANOUT)
    for i in range(3):
        cluster.declare_queue(f"sub{i}")
        cluster.bind_queue("bcast", f"sub{i}")
    message = msg(key="")

    def proc(env):
        return (yield from cluster.publish(brokers[0], message, "bcast", ""))

    outcomes = env.run(until=env.process(proc(env)))
    assert len(outcomes) == 3
    assert all(o.accepted for o in outcomes)
    assert cluster.total_depth() == 3


def test_cluster_subscribe_with_relay_and_ack():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    cluster.declare_queue("q1", leader=brokers[0])
    received = []

    def deliver(message):
        yield env.timeout(0)
        received.append(message)

    cluster.subscribe("q1", "c1", deliver, consumer_broker=brokers[2], prefetch=0)
    message = msg(key="q1")

    def proc(env):
        return (yield from cluster.publish(brokers[0], message, "", "q1"))

    env.run(until=env.process(proc(env)))
    env.run()
    assert len(received) == 1
    assert any("dsn1->dsn3" == hop.element for hop in message.hops)
    settled = cluster.ack("q1", received[0].headers["delivery_tag"])
    assert settled == 1


def test_cluster_unknown_queue_raises():
    env = Environment()
    _, _, cluster = build_cluster(env)
    with pytest.raises(KeyError):
        cluster.queue_leader("missing")
    with pytest.raises(KeyError):
        cluster.get_queue("missing")


def test_cluster_describe_lists_queue_leaders():
    env = Environment()
    _, brokers, cluster = build_cluster(env)
    cluster.declare_queue("q1", leader=brokers[2])
    assert cluster.describe()["queues"]["q1"] == "rmqs3"
    assert cluster.queues() == ["q1"]
