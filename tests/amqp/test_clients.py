"""Unit tests for the producer/consumer client façade (end-to-end in-sim)."""

from __future__ import annotations

import pytest

from repro.simkit import Environment
from repro.netsim import Connection, MessageFactory, Network
from repro.netsim import units
from repro.amqp import (
    AckPolicy,
    Broker,
    BrokerCluster,
    ConsumerClient,
    ProducerClient,
    QueuePolicy,
)


def build_world(env, *, queue_policy=None, ack_policy=None):
    """One producer host, one DSN broker, one consumer host."""
    net = Network(env, "world")
    net.add_node("prod-host")
    net.add_node("dsn1", role="dsn")
    net.add_node("cons-host")
    net.connect("prod-host", "dsn1", bandwidth_bps=units.gbps(1), latency_s=0.0005)
    net.connect("dsn1", "cons-host", bandwidth_bps=units.gbps(1), latency_s=0.0005)

    broker = Broker(env, "rmqs1", net.get_node("dsn1"))
    cluster = BrokerCluster(env, "rabbitmq", [broker], net)
    cluster.declare_queue("work", policy=queue_policy or QueuePolicy(max_length=10_000))

    ack = ack_policy or AckPolicy(consumer_batch=1, publisher_batch=0, prefetch_count=10)

    pub_conn = Connection(env, "pub", [
        net.get_node("prod-host"),
        net.link_between("prod-host", "dsn1"),
        net.get_node("dsn1"),
    ])
    del_conn = Connection(env, "del", [
        net.link_between("dsn1", "cons-host"),
        net.get_node("cons-host"),
    ])
    producer = ProducerClient(env, "prod-0", cluster=cluster, connection=pub_conn,
                              broker=broker, ack_policy=ack)
    consumer = ConsumerClient(env, "cons-0", cluster=cluster, connection=del_conn,
                              broker=broker, ack_policy=ack)
    return net, cluster, producer, consumer


def test_end_to_end_publish_consume_ack():
    env = Environment()
    _, cluster, producer, consumer = build_world(env)
    consumer.subscribe("work")
    factory = MessageFactory("prod-0")
    consumed = []

    def produce(env):
        for i in range(5):
            message = factory.create(units.kib(16), now=env.now, routing_key="work",
                                     headers={"seq": i})
            ok = yield from producer.publish(message)
            assert ok

    def consume(env):
        for _ in range(5):
            message = yield consumer.get()
            consumed.append(message)
            yield from consumer.ack(message)

    env.process(produce(env))
    env.process(consume(env))
    env.run()
    assert len(consumed) == 5
    assert producer.published == 5
    assert consumer.received == 5
    assert cluster.get_queue("work").unacked_count == 0
    # Every consumed message has a full latency measurement.
    assert all(m.latency is not None and m.latency > 0 for m in consumed)


def test_message_hops_cover_full_path():
    env = Environment()
    _, _, producer, consumer = build_world(env)
    consumer.subscribe("work")
    factory = MessageFactory("prod-0")
    box = []

    def produce(env):
        message = factory.create(units.kib(16), now=env.now, routing_key="work")
        yield from producer.publish(message)

    def consume(env):
        message = yield consumer.get()
        box.append(message)

    env.process(produce(env))
    env.process(consume(env))
    env.run()
    elements = [hop.element for hop in box[0].hops]
    assert "prod-host" in elements
    assert "prod-host->dsn1" in elements
    assert "dsn1->cons-host" in elements
    assert "cons-host" in elements


def test_unroutable_publish_returns_false():
    env = Environment()
    _, _, producer, _ = build_world(env)
    factory = MessageFactory("prod-0")

    def produce(env):
        message = factory.create(1024, now=env.now, routing_key="missing-queue")
        return (yield from producer.publish(message))

    ok = env.run(until=env.process(produce(env)))
    assert ok is False
    assert producer.rejected == 1


def test_reject_publish_retries_until_space():
    env = Environment()
    policy = QueuePolicy(max_length=1)
    _, cluster, producer, consumer = build_world(env, queue_policy=policy)
    consumer.subscribe("work", prefetch=1)
    factory = MessageFactory("prod-0")
    consumed = []

    def produce(env):
        results = []
        for i in range(3):
            message = factory.create(1024, now=env.now, routing_key="work")
            ok = yield from producer.publish(message)
            results.append(ok)
        return results

    def consume(env):
        for _ in range(3):
            message = yield consumer.get()
            consumed.append(message)
            yield from consumer.ack(message)

    produce_proc = env.process(produce(env))
    env.process(consume(env))
    results = env.run(until=produce_proc)
    env.run()
    assert results == [True, True, True]
    assert len(consumed) == 3
    # At least one publish had to be retried because the queue was full.
    assert producer.rejected >= 1


def test_publisher_confirm_batches_add_latency():
    env = Environment()
    ack_with_confirms = AckPolicy(consumer_batch=1, publisher_batch=2, prefetch_count=10)
    _, _, producer, consumer = build_world(env, ack_policy=ack_with_confirms)
    consumer.subscribe("work")
    factory = MessageFactory("prod-0")

    def produce(env):
        for _ in range(4):
            message = factory.create(1024, now=env.now, routing_key="work")
            yield from producer.publish(message)

    env.process(produce(env))
    env.run()
    assert producer.monitor.counter("confirm_batches").value == 2


def test_consumer_batch_acks_accumulate():
    env = Environment()
    ack = AckPolicy(consumer_batch=5, publisher_batch=0, prefetch_count=50)
    _, cluster, producer, consumer = build_world(env, ack_policy=ack)
    consumer.subscribe("work")
    factory = MessageFactory("prod-0")

    def produce(env):
        for _ in range(7):
            message = factory.create(1024, now=env.now, routing_key="work")
            yield from producer.publish(message)

    def consume(env):
        for _ in range(7):
            message = yield consumer.get()
            yield from consumer.ack(message)
        yield from consumer.flush_acks()

    env.process(produce(env))
    env.process(consume(env))
    env.run()
    queue = cluster.get_queue("work")
    assert queue.acked == 7
    assert queue.unacked_count == 0
    # 7 deliveries with a batch of 5 → one full batch + one flush.
    assert consumer.monitor.counter("ack_batches").value == 2


def test_prefetch_zero_subscription_uses_explicit_value():
    env = Environment()
    _, cluster, producer, consumer = build_world(env)
    consumer.subscribe("work", prefetch=1)
    factory = MessageFactory("prod-0")

    def produce(env):
        for _ in range(3):
            message = factory.create(1024, now=env.now, routing_key="work")
            yield from producer.publish(message)

    env.process(produce(env))
    env.run()
    # Only one message can be outstanding; the rest stay ready because the
    # consumer application never drains its mailbox/acks.
    assert cluster.get_queue("work").unacked_count == 1
    assert cluster.get_queue("work").ready_count == 2


def test_flush_confirms_noop_when_nothing_pending():
    env = Environment()
    _, _, producer, _ = build_world(env)

    def proc(env):
        yield from producer.flush_confirms()
        return env.now

    assert env.run(until=env.process(proc(env))) == 0.0
