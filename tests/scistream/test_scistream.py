"""Unit tests for the SciStream control plane and tunnel proxies."""

from __future__ import annotations

import pytest

from repro.simkit import Environment
from repro.netsim import MessageFactory, Network
from repro.netsim import units
from repro.cluster.specs import GATEWAY_SPEC
from repro.scistream import (
    S2CS,
    S2UC,
    HAProxyProxy,
    NginxProxy,
    ProxyError,
    StreamRequest,
    StunnelProxy,
    make_proxy,
    new_uid,
)


def gateway(env, name="gn1"):
    net = Network(env)
    return net.add_node(name, GATEWAY_SPEC, role="gateway")


def msg(payload=units.kib(16)):
    return MessageFactory("prod").create(payload, now=0.0)


# ---------------------------------------------------------------------------
# Control protocol objects
# ---------------------------------------------------------------------------

def test_stream_request_validation():
    with pytest.raises(ValueError):
        StreamRequest(direction="sideways", server_cert="c", remote_ip="1.2.3.4",
                      s2cs_address="gn:30600", receiver_ports=(5672,))
    with pytest.raises(ValueError):
        StreamRequest(direction="inbound", server_cert="c", remote_ip="1.2.3.4",
                      s2cs_address="gn:30600", receiver_ports=())
    with pytest.raises(ValueError):
        StreamRequest(direction="outbound", server_cert="c", remote_ip="1.2.3.4",
                      s2cs_address="gn:30600", receiver_ports=(5672,))  # no UID
    with pytest.raises(ValueError):
        StreamRequest(direction="inbound", server_cert="c", remote_ip="1.2.3.4",
                      s2cs_address="gn:30600", receiver_ports=(5672,),
                      num_connections=0)


def test_new_uid_unique():
    assert new_uid() != new_uid()


# ---------------------------------------------------------------------------
# Proxies
# ---------------------------------------------------------------------------

def test_make_proxy_factory_and_unknown_type():
    env = Environment()
    gn = gateway(env)
    assert isinstance(make_proxy("stunnel", env, "p", gn), StunnelProxy)
    assert isinstance(make_proxy("HAProxy", env, "p2", gn), HAProxyProxy)
    assert isinstance(make_proxy("nginx", env, "p3", gn), NginxProxy)
    with pytest.raises(ValueError):
        make_proxy("socat", env, "p4", gn)


def test_stunnel_connection_cap_is_16():
    env = Environment()
    proxy = StunnelProxy(env, "st", gateway(env))
    proxy.register_connections(16)
    with pytest.raises(ProxyError):
        proxy.register_connections(1)
    assert proxy.registered_connections == 16


def test_haproxy_has_no_connection_cap():
    env = Environment()
    proxy = HAProxyProxy(env, "ha", gateway(env))
    proxy.register_connections(64)
    assert proxy.registered_connections == 64


def test_stunnel_single_worker_serializes_forwarding():
    env = Environment()
    proxy = StunnelProxy(env, "st", gateway(env))
    finishes = []

    def forward(env, proxy):
        message = msg(units.mib(1))

        def run():
            yield from proxy.traverse(message)
            finishes.append(env.now)
        return run()

    for _ in range(3):
        env.process(forward(env, proxy))
    env.run()
    assert finishes[0] < finishes[1] < finishes[2]


def test_haproxy_parallel_forwarding_faster_than_stunnel():
    def total_time(proxy_cls):
        env = Environment()
        proxy = proxy_cls(env, "p", gateway(env))

        def forward(env, proxy):
            message = msg(units.kib(64))

            def run():
                yield from proxy.traverse(message)
            return run()

        for _ in range(8):
            env.process(forward(env, proxy))
        env.run()
        return env.now

    assert total_time(HAProxyProxy) < total_time(StunnelProxy)


def test_proxy_traverse_records_proxy_hop_and_counters():
    env = Environment()
    proxy = HAProxyProxy(env, "ha", gateway(env))
    message = msg()

    def proc(env):
        yield from proxy.traverse(message)

    env.process(proc(env))
    env.run()
    kinds = [hop.kind for hop in message.hops]
    assert "proxy" in kinds
    assert proxy.monitor.counter("messages").value == 1


def test_haproxy_num_connections_increases_concurrency_slightly():
    env = Environment()
    gn = gateway(env)
    one = HAProxyProxy(env, "ha1", gn, num_connections=1)
    four = HAProxyProxy(env, "ha4", gn, num_connections=4)
    assert four.effective_concurrency() > one.effective_concurrency()
    assert four.effective_concurrency() <= one.effective_concurrency() + 4


def test_proxy_invalid_arguments():
    env = Environment()
    gn = gateway(env)
    with pytest.raises(ValueError):
        HAProxyProxy(env, "p", gn, num_connections=0)
    proxy = HAProxyProxy(env, "p", gn)
    with pytest.raises(ValueError):
        proxy.register_connections(-1)


# ---------------------------------------------------------------------------
# S2CS / S2UC session establishment
# ---------------------------------------------------------------------------

def build_control_plane(env):
    net = Network(env)
    prod_gw = net.add_node("gn-prod", GATEWAY_SPEC, role="gateway")
    cons_gw = net.add_node("gn-cons", GATEWAY_SPEC, role="gateway")
    prod_s2cs = S2CS(env, "prod-s2cs", prod_gw, side="producer",
                     server_cert="prod-s2cs.crt")
    cons_s2cs = S2CS(env, "cons-s2cs", cons_gw, side="consumer",
                     server_cert="cons-s2cs.crt")
    return prod_s2cs, cons_s2cs


def test_s2cs_rejects_wrong_certificate():
    env = Environment()
    prod_s2cs, _ = build_control_plane(env)
    bad = StreamRequest(direction="outbound", server_cert="wrong.crt",
                        remote_ip="198.51.100.0", s2cs_address="gn-prod:30500",
                        receiver_ports=(5100,), uid="abc")

    def proc(env):
        try:
            yield from prod_s2cs.handle_request(bad)
        except PermissionError:
            return "denied"
        return "allowed"

    assert env.run(until=env.process(proc(env))) == "denied"


def test_s2cs_allocates_ports_in_documented_range():
    env = Environment()
    prod_s2cs, _ = build_control_plane(env)
    request = StreamRequest(direction="outbound", server_cert="prod-s2cs.crt",
                            remote_ip="198.51.100.0", s2cs_address="gn-prod:30500",
                            receiver_ports=(5672,), num_connections=2, uid="abc")

    def proc(env):
        return (yield from prod_s2cs.handle_request(request))

    reservation = env.run(until=env.process(proc(env)))
    assert all(5100 <= p <= 5110 for p in reservation.listener_ports)
    assert len(reservation.listener_ports) == 2
    assert reservation.side == "producer"
    assert prod_s2cs.data_server(reservation.uid).primary_port == reservation.listener_ports[0]


def test_s2cs_port_exhaustion():
    env = Environment()
    prod_s2cs, _ = build_control_plane(env)

    def proc(env):
        for i in range(3):
            request = StreamRequest(direction="outbound", server_cert="prod-s2cs.crt",
                                    remote_ip="198.51.100.0",
                                    s2cs_address="gn-prod:30500",
                                    receiver_ports=(5672,), num_connections=5,
                                    uid=f"uid{i}")
            yield from prod_s2cs.handle_request(request)

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="port range"):
        env.run()


def test_s2uc_establishes_full_session():
    env = Environment()
    prod_s2cs, cons_s2cs = build_control_plane(env)
    s2uc = S2UC(env)

    def proc(env):
        return (yield from s2uc.establish_session(
            producer_s2cs=prod_s2cs, consumer_s2cs=cons_s2cs,
            remote_ip="10.1.1.100", target_ports=(5672,),
            num_connections=1, proxy_type="haproxy"))

    session = env.run(until=env.process(proc(env)))
    assert session.uid
    assert session.producer_proxy.side == "producer"
    assert session.consumer_proxy.side == "consumer"
    assert session.producer_proxy.uid == session.consumer_proxy.uid
    described = session.describe()
    assert described["producer_gateway"] == "gn-prod"
    assert described["consumer_gateway"] == "gn-cons"
    assert s2uc.sessions[session.uid] is session


def test_s2uc_stunnel_session_respects_connection_cap():
    env = Environment()
    prod_s2cs, cons_s2cs = build_control_plane(env)
    s2uc = S2UC(env)

    def proc(env):
        try:
            yield from s2uc.establish_session(
                producer_s2cs=prod_s2cs, consumer_s2cs=cons_s2cs,
                remote_ip="10.1.1.100", target_ports=(5672,),
                num_connections=5, proxy_type="stunnel")
        except Exception as exc:  # port range only allows 11 ports anyway
            return type(exc).__name__
        return "ok"

    # 5 connections is fine for stunnel (cap is 16); session should establish.
    assert env.run(until=env.process(proc(env))) == "ok"


def test_s2uc_release_session():
    env = Environment()
    prod_s2cs, cons_s2cs = build_control_plane(env)
    s2uc = S2UC(env)

    def proc(env):
        return (yield from s2uc.establish_session(
            producer_s2cs=prod_s2cs, consumer_s2cs=cons_s2cs,
            remote_ip="10.1.1.100", target_ports=(5672,)))

    session = env.run(until=env.process(proc(env)))
    s2uc.release_session(session.uid)
    assert session.uid not in s2uc.sessions
    with pytest.raises(KeyError):
        prod_s2cs.data_server(session.uid)
