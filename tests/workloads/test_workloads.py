"""Unit tests for workload specs (Table 1) and the workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim import units
from repro.workloads import (
    DELERIA_EVENT_BYTES,
    DELERIA_EVENTS_PER_MESSAGE,
    DSTREAM,
    GENERIC,
    LSTREAM,
    WORKLOADS,
    WorkloadGenerator,
    WorkloadSpec,
    get_workload,
)


# ---------------------------------------------------------------------------
# Table 1 specs
# ---------------------------------------------------------------------------

def test_dstream_matches_table1():
    assert DSTREAM.payload_bytes == units.kib(16)
    assert DSTREAM.events_per_message == DELERIA_EVENTS_PER_MESSAGE == 8
    assert DSTREAM.effective_event_bytes == DELERIA_EVENT_BYTES == units.kib(2)
    assert DSTREAM.data_rate_bps == units.gbps(32)
    assert DSTREAM.payload_format == "binary"
    assert not DSTREAM.mpi_producers and not DSTREAM.mpi_consumers


def test_lstream_matches_table1():
    assert LSTREAM.payload_bytes == units.mib(1)
    assert LSTREAM.payload_format == "hdf5"
    assert LSTREAM.data_rate_bps == units.gbps(30)
    assert LSTREAM.mpi_producers and LSTREAM.mpi_consumers
    assert LSTREAM.events_per_message == 1


def test_generic_matches_table1():
    assert GENERIC.payload_bytes == units.mib(4)
    assert GENERIC.payload_element == "variables"
    assert GENERIC.data_rate_bps == units.gbps(25)
    assert GENERIC.events_per_message == 1


def test_registry_and_lookup():
    assert set(WORKLOADS) == {"Dstream", "Lstream", "Generic"}
    assert get_workload("dstream") is DSTREAM
    assert get_workload("LSTREAM") is LSTREAM
    with pytest.raises(KeyError):
        get_workload("Xstream")


def test_table_rows_have_paper_columns():
    for spec in WORKLOADS.values():
        row = spec.table_row()
        for column in ["workload", "payload_size", "payload_format",
                       "data_packaging", "data_rate",
                       "production_parallelism", "consumption_parallelism"]:
            assert column in row
    assert DSTREAM.table_row()["data_packaging"] == "8 events/msg"
    assert GENERIC.table_row()["data_packaging"] == "One item/msg"
    assert LSTREAM.table_row()["payload_format"] == "HDF5"


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", payload_bytes=0)
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", payload_bytes=1, events_per_message=0)
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", payload_bytes=1, data_rate_bps=0)


def test_spec_validation_names_the_offending_field_and_value():
    """Every numeric check reports the field name AND the bad value."""
    cases = [
        ({"payload_bytes": -4.0}, "payload_bytes must be positive, got -4.0"),
        ({"payload_bytes": 1, "events_per_message": 0},
         "events_per_message must be >= 1, got 0"),
        ({"payload_bytes": 1, "data_rate_bps": -1e9},
         "data_rate_bps must be positive, got -1"),
        ({"payload_bytes": 1, "event_bytes": -2.0},
         "event_bytes must be non-negative, got -2.0"),
        ({"payload_bytes": 1, "reply_bytes": -8.0},
         "reply_bytes must be non-negative, got -8.0"),
    ]
    for overrides, expected in cases:
        with pytest.raises(ValueError) as excinfo:
            WorkloadSpec(name="bad", **overrides)
        assert expected in str(excinfo.value)


def test_producer_interval_rejects_non_positive_counts_by_name():
    with pytest.raises(ValueError, match="num_producers must be >= 1, got 0"):
        DSTREAM.producer_interval(0)
    with pytest.raises(ValueError, match="num_producers must be >= 1, got -3"):
        DSTREAM.producer_interval(-3)


def test_rate_derivations():
    # 16 KiB at 32 Gbps -> ~244K msgs/s aggregate.
    rate = DSTREAM.messages_per_second_at_rate()
    assert rate == pytest.approx(units.gbps(32) / units.bits(units.kib(16)))
    interval = DSTREAM.producer_interval(num_producers=16)
    assert interval == pytest.approx(16 / rate)
    with pytest.raises(ValueError):
        DSTREAM.producer_interval(0)


def test_reply_bytes_defaults_to_payload():
    assert DSTREAM.effective_reply_bytes == DSTREAM.payload_bytes
    custom = WorkloadSpec(name="c", payload_bytes=100, reply_bytes=10)
    assert custom.effective_reply_bytes == 10


# ---------------------------------------------------------------------------
# WorkloadGenerator
# ---------------------------------------------------------------------------

def test_generator_fixed_payload_by_default():
    gen = WorkloadGenerator(DSTREAM, rng=np.random.default_rng(0))
    blueprints = [gen.next_blueprint() for _ in range(5)]
    assert all(bp.payload_bytes == units.kib(16) for bp in blueprints)
    assert all(bp.event_count == 8 for bp in blueprints)
    assert [bp.sequence for bp in blueprints] == [0, 1, 2, 3, 4]
    assert gen.messages_generated == 5


def test_generator_variable_events_only_for_variable_workloads():
    gen = WorkloadGenerator(DSTREAM, rng=np.random.default_rng(1), vary_events=True)
    counts = {gen.next_blueprint().event_count for _ in range(50)}
    assert len(counts) > 1
    assert all(4 <= c <= 16 for c in counts)
    # The generic workload has fixed packaging, vary_events is ignored.
    gen2 = WorkloadGenerator(GENERIC, rng=np.random.default_rng(1), vary_events=True)
    assert gen2.next_blueprint().event_count == 1


def test_generator_rate_limiting_interval():
    free = WorkloadGenerator(DSTREAM, num_producers=4)
    paced = WorkloadGenerator(DSTREAM, rate_limited=True, num_producers=4)
    assert free.send_interval() == 0.0
    assert paced.send_interval() == pytest.approx(DSTREAM.producer_interval(4))


def test_generator_headers_carry_workload_name_and_sequence():
    gen = WorkloadGenerator(LSTREAM)
    bp = gen.next_blueprint()
    assert bp.headers["workload"] == "Lstream"
    assert bp.headers["sequence"] == 0
    assert bp.payload_format == "hdf5"
    assert not bp.is_control


def test_generator_reply_payload_matches_spec():
    gen = WorkloadGenerator(GENERIC)
    assert gen.reply_payload_bytes() == GENERIC.effective_reply_bytes


# ---------------------------------------------------------------------------
# RNG provenance (the lint pass's first real catch: the old
# `rng or default_rng(0)` fallback collapsed every varying generator onto
# one hard-coded stream)
# ---------------------------------------------------------------------------

def test_generator_varying_without_rng_is_an_error():
    with pytest.raises(ValueError, match="seeded stream"):
        WorkloadGenerator(DSTREAM, vary_events=True)


def test_generator_accepts_a_stream_factory():
    from repro.simkit.rand import RandomStreams
    a = WorkloadGenerator(DSTREAM, streams=RandomStreams(7),
                          vary_events=True)
    b = WorkloadGenerator(DSTREAM, streams=RandomStreams(7),
                          vary_events=True)
    other = WorkloadGenerator(DSTREAM, streams=RandomStreams(8),
                              vary_events=True)
    seq_a = [a.next_blueprint().event_count for _ in range(20)]
    seq_b = [b.next_blueprint().event_count for _ in range(20)]
    seq_other = [other.next_blueprint().event_count for _ in range(20)]
    assert seq_a == seq_b           # same root seed, same draws
    assert seq_a != seq_other       # different root seed diverges


def test_generator_rejects_rng_and_streams_together():
    from repro.simkit.rand import RandomStreams
    with pytest.raises(ValueError, match="not both"):
        WorkloadGenerator(DSTREAM, rng=np.random.default_rng(1),
                          streams=RandomStreams(1))


def test_generator_distinct_rngs_draw_distinct_batches():
    """Two producers with distinct derived streams must not mirror each
    other (the old fallback made them identical)."""
    from repro.simkit.rand import RandomStreams
    streams = RandomStreams(3)
    gens = [WorkloadGenerator(DSTREAM, rng=streams.stream("workload", rank),
                              vary_events=True) for rank in range(2)]
    seqs = [[g.next_blueprint().event_count for _ in range(30)]
            for g in gens]
    assert seqs[0] != seqs[1]


def test_generator_non_varying_needs_no_rng():
    gen = WorkloadGenerator(DSTREAM)
    assert gen.rng is None
    assert gen.next_blueprint().event_count == 8
