"""Unit tests for the metric calculators and exporters."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.metrics import (
    compute_rtt,
    compute_throughput,
    empirical_cdf,
    format_table,
    format_value,
    overhead_factor,
    overhead_table,
    percentile,
    summarize,
    to_csv,
    write_csv,
)


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------

def test_summarize_basic():
    stats = summarize([1, 2, 3, 4, 5])
    assert stats.count == 5
    assert stats.mean == 3
    assert stats.median == 3
    assert stats.minimum == 1 and stats.maximum == 5
    assert stats.p10 <= stats.median <= stats.p90 <= stats.p99
    assert stats.as_dict()["count"] == 5


def test_summarize_empty_is_nan():
    stats = summarize([])
    assert stats.count == 0
    assert math.isnan(stats.mean)


def test_percentile_helper():
    assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
    assert math.isnan(percentile([], 50))


def test_empirical_cdf_properties():
    rng = np.random.default_rng(0)
    values = rng.exponential(2.0, size=1000)
    x, p = empirical_cdf(values, points=100)
    assert len(x) <= 100
    assert np.all(np.diff(x) >= 0)
    assert np.all(np.diff(p) >= 0)
    assert p[-1] == pytest.approx(1.0)
    # Median should sit near probability 0.5.
    median = np.median(values)
    idx = np.searchsorted(x, median)
    assert 0.4 <= p[min(idx, len(p) - 1)] <= 0.6


def test_empirical_cdf_empty_and_small():
    x, p = empirical_cdf([])
    assert x.size == 0 and p.size == 0
    x, p = empirical_cdf([3.0], points=10)
    assert list(x) == [3.0] and list(p) == [1.0]


# ---------------------------------------------------------------------------
# throughput
# ---------------------------------------------------------------------------

def test_compute_throughput_basic():
    result = compute_throughput(messages=1000, payload_bytes=1000 * 16384,
                                first_publish_s=10.0, last_consume_s=12.0)
    assert result.msgs_per_s == pytest.approx(500.0)
    assert result.duration_s == pytest.approx(2.0)
    assert result.gbits_per_s == pytest.approx(1000 * 16384 * 8 / 2 / 1e9)
    assert result.as_dict()["messages"] == 1000


def test_compute_throughput_zero_cases():
    assert compute_throughput(messages=0, payload_bytes=0,
                              first_publish_s=0, last_consume_s=10).msgs_per_s == 0.0
    assert compute_throughput(messages=5, payload_bytes=10,
                              first_publish_s=5, last_consume_s=5).msgs_per_s == 0.0


def test_compute_throughput_rejects_negative():
    with pytest.raises(ValueError):
        compute_throughput(messages=-1, payload_bytes=0,
                           first_publish_s=0, last_consume_s=1)


# ---------------------------------------------------------------------------
# RTT
# ---------------------------------------------------------------------------

def test_compute_rtt_summary_and_cdf():
    samples = [0.01, 0.02, 0.03, 0.04, 0.10]
    result = compute_rtt(samples)
    assert result.count == 5
    assert result.median_s == pytest.approx(0.03)
    assert result.fraction_under(0.05) == pytest.approx(0.8)
    assert result.cdf_p[-1] == pytest.approx(1.0)
    assert result.as_dict()["median_s"] == pytest.approx(0.03)


def test_compute_rtt_empty():
    result = compute_rtt([])
    assert result.count == 0
    assert math.isnan(result.median_s)
    assert math.isnan(result.fraction_under(1.0))


# ---------------------------------------------------------------------------
# Overhead
# ---------------------------------------------------------------------------

def test_overhead_factor_throughput_and_rtt_conventions():
    # Throughput: baseline 100, other 50 -> 2x overhead.
    assert overhead_factor(100, 50, higher_is_better=True) == pytest.approx(2.0)
    # RTT: baseline 0.02s, other 0.138s -> 6.9x overhead (paper's MSS figure).
    assert overhead_factor(0.02, 0.138, higher_is_better=False) == pytest.approx(6.9)
    assert math.isnan(overhead_factor(0, 1, higher_is_better=True))
    assert math.isnan(overhead_factor(1, float("nan"), higher_is_better=True))


def test_overhead_table_excludes_baseline():
    values = {"DTS": 100.0, "PRS(HAProxy)": 50.0, "MSS": 40.0}
    rows = overhead_table(values, baseline="DTS", metric="throughput",
                          higher_is_better=True)
    names = [r.architecture for r in rows]
    assert "DTS" not in names
    factors = {r.architecture: r.factor for r in rows}
    assert factors["PRS(HAProxy)"] == pytest.approx(2.0)
    assert factors["MSS"] == pytest.approx(2.5)
    assert rows[0].as_dict()["baseline"] == "DTS"


def test_overhead_table_requires_baseline():
    with pytest.raises(KeyError):
        overhead_table({"MSS": 1.0}, baseline="DTS", metric="x", higher_is_better=True)


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------

def test_format_value_variants():
    assert format_value(None) == "-"
    assert format_value(True) == "yes"
    assert format_value(float("nan")) == "n/a"
    assert format_value(0.0) == "0"
    assert format_value(123456.0) == "123,456"
    assert format_value(0.000001) == "1.00e-06"
    assert format_value("text") == "text"


def test_format_table_and_csv_round_trip(tmp_path):
    rows = [
        {"architecture": "DTS", "consumers": 1, "throughput": 4400.0},
        {"architecture": "MSS", "consumers": 1, "throughput": 1200.5},
    ]
    table = format_table(rows, title="Figure 4")
    assert "Figure 4" in table
    assert "DTS" in table and "MSS" in table
    csv_text = to_csv(rows)
    assert csv_text.splitlines()[0] == "architecture,consumers,throughput"
    assert len(csv_text.splitlines()) == 3
    path = tmp_path / "fig4.csv"
    write_csv(path, rows)
    assert path.read_text().startswith("architecture")


def test_format_table_empty():
    assert "(no data)" in format_table([], title="empty")
    assert to_csv([]) == ""
