"""Property-based tests of the metrics layer (hypothesis)."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    compute_rtt,
    compute_throughput,
    empirical_cdf,
    overhead_factor,
    summarize,
)

_settings = settings(max_examples=50, deadline=None)

samples = st.lists(st.floats(min_value=1e-6, max_value=1e3,
                             allow_nan=False, allow_infinity=False),
                   min_size=1, max_size=200)


@_settings
@given(values=samples)
def test_summary_bounds(values):
    stats = summarize(values)
    assert stats.count == len(values)
    assert stats.minimum <= stats.median <= stats.maximum
    assert stats.minimum <= stats.mean <= stats.maximum
    assert stats.p10 <= stats.p90 <= stats.p99 <= stats.maximum + 1e-12


@_settings
@given(values=samples, points=st.integers(min_value=2, max_value=50))
def test_cdf_is_a_distribution(values, points):
    x, p = empirical_cdf(values, points=points)
    assert np.all(np.diff(x) >= 0)
    assert np.all(np.diff(p) >= 0)
    assert 0 < p[0] <= 1.0
    assert p[-1] == 1.0
    assert x[0] >= min(values) - 1e-12
    assert x[-1] <= max(values) + 1e-12


@_settings
@given(values=samples)
def test_rtt_fraction_under_is_consistent_with_median(values):
    result = compute_rtt(values)
    median = result.median_s
    fraction = result.fraction_under(median)
    assert 0.5 - 1e-9 <= fraction <= 1.0


@_settings
@given(messages=st.integers(min_value=1, max_value=10 ** 6),
       payload=st.floats(min_value=1, max_value=1e12, allow_nan=False),
       duration=st.floats(min_value=1e-3, max_value=1e5, allow_nan=False))
def test_throughput_is_ratio_of_count_and_duration(messages, payload, duration):
    result = compute_throughput(messages=messages, payload_bytes=payload,
                                first_publish_s=0.0, last_consume_s=duration)
    assert result.msgs_per_s > 0
    assert math.isclose(result.msgs_per_s, messages / duration, rel_tol=1e-9)
    assert math.isclose(result.gbits_per_s, payload * 8 / duration / 1e9,
                        rel_tol=1e-9)


@_settings
@given(baseline=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
       value=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
def test_overhead_factor_symmetry(baseline, value):
    throughput_view = overhead_factor(baseline, value, higher_is_better=True)
    rtt_view = overhead_factor(value, baseline, higher_is_better=False)
    # The two conventions agree: both express "how much worse than baseline".
    assert math.isclose(throughput_view, rtt_view, rel_tol=1e-9)
    # Parity when the values are equal.
    assert math.isclose(overhead_factor(baseline, baseline, higher_is_better=True),
                        1.0, rel_tol=1e-9)
