"""Unit tests for unit conversions and the message model."""

from __future__ import annotations

import pytest

from repro.netsim import Message, MessageFactory
from repro.netsim import units


# ---------------------------------------------------------------------------
# units
# ---------------------------------------------------------------------------

def test_binary_size_conversions():
    assert units.kib(16) == 16 * 1024
    assert units.mib(1) == 1024 ** 2
    assert units.gib(2) == 2 * 1024 ** 3


def test_rate_conversions():
    assert units.gbps(1) == 1e9
    assert units.mbps(100) == 1e8
    assert units.kbps(5) == 5e3


def test_transmission_time_16kib_at_1gbps():
    # 16 KiB * 8 bits / 1e9 bps = 131.072 microseconds
    t = units.transmission_time(units.kib(16), units.gbps(1))
    assert t == pytest.approx(131.072e-6)


def test_transmission_time_rejects_bad_arguments():
    with pytest.raises(ValueError):
        units.transmission_time(100, 0)
    with pytest.raises(ValueError):
        units.transmission_time(-1, 1e9)


def test_bits_and_megabits():
    assert units.bits(10) == 80
    assert units.megabits(1e6 / 8) == pytest.approx(1.0)


def test_pretty_size_and_rate():
    assert units.pretty_size(units.kib(16)) == "16.0 KiB"
    assert units.pretty_size(units.mib(4)) == "4.0 MiB"
    assert units.pretty_size(12) == "12 B"
    assert units.pretty_rate(units.gbps(1)) == "1.0 Gbps"
    assert units.pretty_rate(500) == "500 bps"


# ---------------------------------------------------------------------------
# Message
# ---------------------------------------------------------------------------

def test_message_factory_unique_ids():
    factory = MessageFactory("prod-0")
    a = factory.create(1024, now=0.0)
    b = factory.create(1024, now=0.0)
    assert a.message_id != b.message_id
    assert a.producer == "prod-0"


def test_message_wire_bytes_includes_framing():
    factory = MessageFactory(framing_bytes=100)
    msg = factory.create(1000, now=0.0)
    assert msg.wire_bytes == 1100


def test_message_latency_requires_consumption():
    factory = MessageFactory()
    msg = factory.create(1024, now=1.0)
    assert msg.latency is None
    msg.consumed_at = 3.5
    assert msg.latency == pytest.approx(2.5)


def test_message_hop_recording_and_breakdown():
    factory = MessageFactory()
    msg = factory.create(1024, now=0.0)
    msg.record_hop("linkA", "link", 0.0, 0.5)
    msg.record_hop("broker1", "broker", 0.5, 0.7)
    msg.record_hop("linkB", "link", 0.7, 1.0)
    assert msg.hop_count() == 3
    breakdown = msg.hop_breakdown()
    assert breakdown["link"] == pytest.approx(0.8)
    assert breakdown["broker"] == pytest.approx(0.2)


def test_message_make_reply_links_correlation():
    factory = MessageFactory("prod-3")
    request = factory.create(2048, now=1.0, routing_key="work", reply_to="reply.prod-3")
    request.headers["consumer"] = "cons-7"
    reply = request.make_reply(128, now=5.0)
    assert reply.correlation_id == request.message_id
    assert reply.routing_key == "reply.prod-3"
    assert reply.headers["request_id"] == request.message_id
    assert reply.headers["request_created_at"] == 1.0
    assert reply.created_at == 5.0
    assert reply.producer == "cons-7"


def test_message_headers_passed_through_factory():
    factory = MessageFactory()
    msg = factory.create(10, now=0.0, headers={"seq": 4}, routing_key="q1",
                         event_count=8, payload_format="hdf5")
    assert msg.headers["seq"] == 4
    assert msg.event_count == 8
    assert msg.payload_format == "hdf5"
    assert msg.routing_key == "q1"
