"""Property-based tests of the network substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.netsim import Link, MessageFactory, Network
from repro.netsim import units
from repro.netsim.tls import DEFAULT_TLS, TLSProfile
from repro.simkit import Environment

_settings = settings(max_examples=40, deadline=None)


@_settings
@given(nbytes=st.floats(min_value=1, max_value=1e9, allow_nan=False),
       bandwidth=st.floats(min_value=1e6, max_value=1e11, allow_nan=False))
def test_transmission_time_scales_linearly(nbytes, bandwidth):
    single = units.transmission_time(nbytes, bandwidth)
    double = units.transmission_time(2 * nbytes, bandwidth)
    faster = units.transmission_time(nbytes, 2 * bandwidth)
    assert single > 0
    assert double == np.float64(2 * nbytes) * 8 / bandwidth
    assert abs(double - 2 * single) <= 1e-9 * max(1.0, double)
    assert faster < single


@_settings
@given(sizes=st.lists(st.integers(min_value=100, max_value=10 ** 7),
                      min_size=1, max_size=10))
def test_link_serialization_conserves_messages_and_orders_fifo(sizes):
    env = Environment()
    link = Link(env, "l", bandwidth_bps=units.gbps(1), latency_s=0.0)
    completions = []

    def send(env, link, size, tag):
        message = MessageFactory("p").create(size, now=env.now)
        yield from link.traverse(message)
        completions.append(tag)

    for tag, size in enumerate(sizes):
        env.process(send(env, link, size, tag))
    env.run()
    # All messages delivered, in submission (FIFO) order.
    assert completions == list(range(len(sizes)))
    assert link.monitor.counter("messages").value == len(sizes)
    # Total busy time equals the sum of serialization delays.
    expected_busy = sum(units.transmission_time(s + 512, units.gbps(1)) for s in sizes)
    assert link.utilization() * env.now <= expected_busy + 1e-9


@_settings
@given(nbytes=st.floats(min_value=0, max_value=1e8, allow_nan=False),
       per_byte=st.floats(min_value=0, max_value=1e-8, allow_nan=False),
       per_message=st.floats(min_value=0, max_value=1e-3, allow_nan=False))
def test_tls_cost_is_monotone_in_size(nbytes, per_byte, per_message):
    profile = TLSProfile(name="t", per_byte_seconds=per_byte,
                         per_message_seconds=per_message)
    assert profile.message_cost(nbytes) >= per_message
    assert profile.message_cost(nbytes * 2) >= profile.message_cost(nbytes)
    disabled = TLSProfile(name="off", enabled=False,
                          per_byte_seconds=per_byte,
                          per_message_seconds=per_message)
    assert disabled.message_cost(nbytes) == 0.0


@_settings
@given(chain_length=st.integers(min_value=2, max_value=8))
def test_route_hop_count_matches_chain_length(chain_length):
    env = Environment()
    net = Network(env)
    names = [f"n{i}" for i in range(chain_length)]
    for name in names:
        net.add_node(name)
    for a, b in zip(names, names[1:]):
        net.connect(a, b, bandwidth_bps=units.gbps(1))
    route = net.route(names[0], names[-1])
    assert route.hop_count == chain_length - 1
    assert [n.name for n in route.nodes] == names
