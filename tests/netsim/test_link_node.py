"""Unit tests for the link and node traversal models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simkit import Environment
from repro.netsim import Link, MessageFactory, NetworkNode, NodeSpec
from repro.netsim.tls import DEFAULT_TLS, NULL_TLS
from repro.netsim import units


def make_message(payload=units.kib(16), framing=0.0):
    return MessageFactory(framing_bytes=framing).create(payload, now=0.0)


# ---------------------------------------------------------------------------
# Link
# ---------------------------------------------------------------------------

def test_link_serialization_delay_matches_units():
    env = Environment()
    link = Link(env, "l", bandwidth_bps=units.gbps(1), latency_s=0.0)
    assert link.serialization_delay(units.kib(16)) == pytest.approx(131.072e-6)


def test_link_traverse_takes_serialization_plus_latency():
    env = Environment()
    link = Link(env, "l", bandwidth_bps=units.gbps(1), latency_s=0.001)
    msg = make_message()

    def proc(env):
        yield from link.traverse(msg)

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(131.072e-6 + 0.001)
    assert msg.hop_count() == 1
    assert msg.hops[0].kind == "link"


def test_link_serializes_concurrent_messages():
    env = Environment()
    link = Link(env, "l", bandwidth_bps=units.gbps(1), latency_s=0.0)
    finish_times = []

    def sender(env, link):
        msg = make_message(units.mib(1))

        def run():
            yield from link.traverse(msg)
            finish_times.append(env.now)
        return run()

    env.process(sender(env, link))
    env.process(sender(env, link))
    env.run()
    one_mib = units.transmission_time(units.mib(1), units.gbps(1))
    assert finish_times[0] == pytest.approx(one_mib)
    assert finish_times[1] == pytest.approx(2 * one_mib)


def test_link_jitter_uses_rng_and_stays_in_bounds():
    env = Environment()
    rng = np.random.default_rng(0)
    link = Link(env, "l", bandwidth_bps=units.gbps(1), latency_s=0.001,
                jitter_s=0.002, rng=rng)
    for _ in range(20):
        delay = link.propagation_delay()
        assert 0.001 <= delay <= 0.003


def test_link_jitter_without_rng_is_deterministic_midpoint():
    env = Environment()
    link = Link(env, "l", bandwidth_bps=units.gbps(1), latency_s=0.001, jitter_s=0.002)
    assert link.propagation_delay() == pytest.approx(0.002)


def test_link_rejects_bad_parameters():
    env = Environment()
    with pytest.raises(ValueError):
        Link(env, "l", bandwidth_bps=0)
    with pytest.raises(ValueError):
        Link(env, "l", bandwidth_bps=1e9, latency_s=-1)


def test_link_utilization_and_counters():
    env = Environment()
    link = Link(env, "l", bandwidth_bps=units.gbps(1), latency_s=0.0)
    msg = make_message(units.mib(10))

    def proc(env):
        yield from link.traverse(msg)

    env.process(proc(env))
    env.run()
    assert link.monitor.counter("messages").value == 1
    assert link.monitor.counter("bytes").value == msg.wire_bytes
    assert link.utilization() == pytest.approx(1.0)


def test_link_queue_length_observable_mid_transfer():
    env = Environment()
    link = Link(env, "l", bandwidth_bps=units.mbps(1), latency_s=0.0)

    def send(env, link):
        msg = make_message(units.mib(1))
        yield from link.traverse(msg)

    env.process(send(env, link))
    env.process(send(env, link))
    env.process(send(env, link))
    env.run(until=0.001)
    assert link.queue_length == 2


# ---------------------------------------------------------------------------
# NetworkNode
# ---------------------------------------------------------------------------

def test_node_service_time_includes_per_message_and_per_byte():
    env = Environment()
    spec = NodeSpec(per_message_seconds=1e-3, per_byte_seconds=1e-6, concurrency=1)
    node = NetworkNode(env, "n", spec)
    msg = make_message(payload=1000)
    assert node.service_time(msg) == pytest.approx(1e-3 + 1e-3)


def test_node_service_time_with_tls_is_larger():
    env = Environment()
    node = NetworkNode(env, "n")
    msg = make_message(units.mib(1))
    assert node.service_time(msg, DEFAULT_TLS) > node.service_time(msg, NULL_TLS)


def test_node_concurrency_limits_parallel_service():
    env = Environment()
    spec = NodeSpec(per_message_seconds=1.0, per_byte_seconds=0.0, concurrency=2)
    node = NetworkNode(env, "n", spec)
    finishes = []

    def handle(env, node):
        msg = make_message(0)

        def run():
            yield from node.traverse(msg)
            finishes.append(env.now)
        return run()

    for _ in range(4):
        env.process(handle(env, node))
    env.run()
    assert finishes == pytest.approx([1.0, 1.0, 2.0, 2.0])


def test_node_records_hop_with_role():
    env = Environment()
    node = NetworkNode(env, "dsn1", role="broker-host")
    msg = make_message()

    def proc(env):
        yield from node.traverse(msg)

    env.process(proc(env))
    env.run()
    assert msg.hops[0].kind == "broker-host"
    assert msg.hops[0].element == "dsn1"


def test_node_utilization_bounded():
    env = Environment()
    spec = NodeSpec(per_message_seconds=0.5, per_byte_seconds=0.0, concurrency=1)
    node = NetworkNode(env, "n", spec)

    def proc(env):
        yield from node.traverse(make_message(0))

    env.process(proc(env))
    env.run()
    assert 0.0 < node.utilization() <= 1.0
    assert node.queue_length == 0
    assert node.in_service == 0
