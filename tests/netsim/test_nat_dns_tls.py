"""Unit tests for firewall/NAT/NodePort, DNS/route controller and TLS model."""

from __future__ import annotations

import pytest

from repro.simkit import Environment
from repro.netsim import (
    DNSRegistry,
    Endpoint,
    Firewall,
    NATGateway,
    NodePortAllocator,
    RouteController,
)
from repro.netsim.nat import NODEPORT_RANGE, _cidr_contains
from repro.netsim.tls import DEFAULT_TLS, MUTUAL_TLS, NULL_TLS, TLSProfile


# ---------------------------------------------------------------------------
# Firewall / NAT / NodePorts
# ---------------------------------------------------------------------------

def test_firewall_default_deny_then_allow():
    fw = Firewall("olcf")
    assert not fw.permits("198.51.100.7", "dsn1", 30671)
    fw.allow("198.51.100.0/24", "dsn1", 30671, description="AMQPS NodePort")
    assert fw.permits("198.51.100.7", "dsn1", 30671)
    assert not fw.permits("203.0.113.9", "dsn1", 30671)
    assert fw.rule_count == 1


def test_firewall_any_source():
    fw = Firewall("olcf")
    fw.allow("any", "lb", 443)
    assert fw.permits("8.8.8.8", "lb", 443)
    assert not fw.permits("8.8.8.8", "lb", 80)


def test_cidr_matching_edge_cases():
    assert _cidr_contains("0.0.0.0/0", "1.2.3.4")
    assert _cidr_contains("10.1.1.100", "10.1.1.100")
    assert not _cidr_contains("10.1.1.100", "10.1.1.101")
    assert _cidr_contains("10.0.0.0/8", "10.255.0.1")
    assert not _cidr_contains("10.0.0.0/8", "11.0.0.1")
    assert not _cidr_contains("garbage/8", "10.0.0.1")


def test_nat_gateway_mappings():
    nat = NATGateway("border")
    nat.add_mapping("198.51.100.1", 30672, "dsn1", 5672)
    mapping = nat.translate("198.51.100.1", 30672)
    assert mapping is not None
    assert mapping.internal_host == "dsn1"
    assert nat.translate("198.51.100.1", 9999) is None
    with pytest.raises(ValueError):
        nat.add_mapping("198.51.100.1", 30672, "dsn2", 5672)
    assert nat.mapping_count == 1


def test_nodeport_allocation_in_range():
    alloc = NodePortAllocator()
    port = alloc.allocate("rabbitmq-amqp")
    assert NODEPORT_RANGE[0] <= port <= NODEPORT_RANGE[1]
    assert alloc.owner(port) == "rabbitmq-amqp"


def test_nodeport_preferred_and_conflicts():
    alloc = NodePortAllocator()
    assert alloc.allocate("amqp", preferred=30672) == 30672
    with pytest.raises(ValueError):
        alloc.allocate("other", preferred=30672)
    with pytest.raises(ValueError):
        alloc.allocate("other", preferred=100)
    alloc.release(30672)
    assert alloc.allocate("other", preferred=30672) == 30672


def test_nodeport_exhaustion():
    alloc = NodePortAllocator(port_range=(30000, 30001))
    alloc.allocate("a")
    alloc.allocate("b")
    with pytest.raises(RuntimeError):
        alloc.allocate("c")
    assert len(alloc) == 2
    assert alloc.allocated_ports("a") == [30000]


def test_nodeport_invalid_range():
    with pytest.raises(ValueError):
        NodePortAllocator(port_range=(31000, 30000))


# ---------------------------------------------------------------------------
# DNS / RouteController
# ---------------------------------------------------------------------------

def test_dns_resolution_charges_latency_once():
    env = Environment()
    dns = DNSRegistry(env, lookup_latency_s=0.01)
    dns.register("rmq.apps.olivine.ccs.ornl.gov", Endpoint("lb", 443, "amqps"))

    def proc(env):
        endpoint = yield from dns.resolve("rmq.apps.olivine.ccs.ornl.gov")
        first_time = env.now
        endpoint2 = yield from dns.resolve("rmq.apps.olivine.ccs.ornl.gov")
        return endpoint, first_time, endpoint2, env.now

    result = env.run(until=env.process(proc(env)))
    endpoint, first_time, endpoint2, second_time = result
    assert endpoint.host == "lb"
    assert first_time == pytest.approx(0.01)
    assert second_time == pytest.approx(0.01)  # cached, no extra latency
    assert endpoint2 == endpoint
    assert dns.lookups == 2


def test_dns_unknown_name_raises():
    env = Environment()
    dns = DNSRegistry(env)

    def proc(env):
        yield from dns.resolve("missing.example")

    env.process(proc(env))
    with pytest.raises(KeyError):
        env.run()
    with pytest.raises(KeyError):
        dns.resolve_now("missing.example")


def test_dns_known_names_and_resolve_now():
    env = Environment()
    dns = DNSRegistry(env)
    dns.register("a.example", Endpoint("n1", 443))
    assert dns.known_names() == ["a.example"]
    assert dns.resolve_now("a.example").port == 443


def test_route_controller_round_robin():
    rc = RouteController()
    backends = [Endpoint("dsn1", 5672), Endpoint("dsn2", 5672), Endpoint("dsn3", 5672)]
    rc.add_route("rmq.example", backends)
    picks = [rc.select_backend("rmq.example").host for _ in range(6)]
    assert picks == ["dsn1", "dsn2", "dsn3", "dsn1", "dsn2", "dsn3"]
    assert rc.route_count() == 1


def test_route_controller_requires_backends():
    rc = RouteController()
    with pytest.raises(ValueError):
        rc.add_route("x", [])
    with pytest.raises(KeyError):
        rc.backends("missing")


def test_endpoint_url():
    endpoint = Endpoint("dsn1", 30671, "amqps")
    assert endpoint.url == "amqps://dsn1:30671"


# ---------------------------------------------------------------------------
# TLS
# ---------------------------------------------------------------------------

def test_null_tls_is_free():
    assert NULL_TLS.handshake_cost() == 0.0
    assert NULL_TLS.message_cost(10**6) == 0.0


def test_tls_message_cost_scales_with_size():
    small = DEFAULT_TLS.message_cost(1024)
    large = DEFAULT_TLS.message_cost(1024 ** 2)
    assert large > small > 0.0


def test_mutual_tls_handshake_costs_more():
    assert MUTUAL_TLS.handshake_cost() > DEFAULT_TLS.handshake_cost()


def test_custom_profile_disabled_flag():
    profile = TLSProfile(name="off", enabled=False)
    assert profile.handshake_cost() == 0.0
    assert profile.message_cost(1e9) == 0.0
