"""Unit tests for topology routing and the connection data path."""

from __future__ import annotations

import pytest

from repro.simkit import Environment
from repro.netsim import (
    Connection,
    MessageFactory,
    Network,
    SecuredNode,
)
from repro.netsim.tls import DEFAULT_TLS, NULL_TLS
from repro.netsim import units


def small_net(env):
    net = Network(env, "t")
    for name in ["andes1", "dsn1", "dsn2", "lb"]:
        net.add_node(name)
    net.connect("andes1", "dsn1", bandwidth_bps=units.gbps(1))
    net.connect("dsn1", "dsn2", bandwidth_bps=units.gbps(1))
    net.connect("andes1", "lb", bandwidth_bps=units.gbps(1))
    net.connect("lb", "dsn2", bandwidth_bps=units.gbps(1))
    return net


# ---------------------------------------------------------------------------
# Network / Route
# ---------------------------------------------------------------------------

def test_add_node_and_duplicate_rejected():
    env = Environment()
    net = Network(env)
    net.add_node("a")
    with pytest.raises(ValueError):
        net.add_node("a")


def test_add_link_requires_existing_nodes():
    env = Environment()
    net = Network(env)
    net.add_node("a")
    with pytest.raises(KeyError):
        net.add_link("a", "missing", bandwidth_bps=1e9)


def test_duplicate_link_rejected():
    env = Environment()
    net = Network(env)
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", bandwidth_bps=1e9)
    with pytest.raises(ValueError):
        net.add_link("a", "b", bandwidth_bps=1e9)


def test_connect_creates_both_directions():
    env = Environment()
    net = small_net(env)
    assert net.has_link("andes1", "dsn1")
    assert net.has_link("dsn1", "andes1")


def test_route_shortest_path_hop_count():
    env = Environment()
    net = small_net(env)
    route = net.route("andes1", "dsn2")
    assert route.hop_count == 2
    assert net.hop_count("andes1", "dsn1") == 1


def test_route_same_node_is_zero_hops():
    env = Environment()
    net = small_net(env)
    route = net.route("dsn1", "dsn1")
    assert route.hop_count == 0
    assert route.nodes[0].name == "dsn1"


def test_route_missing_raises():
    env = Environment()
    net = Network(env)
    net.add_node("a")
    net.add_node("b")
    with pytest.raises(KeyError):
        net.route("a", "b")


def test_register_route_forces_waypoints():
    env = Environment()
    net = small_net(env)
    forced = net.register_route("andes1", "dsn2", ["lb"])
    assert [n.name for n in forced.nodes] == ["andes1", "lb", "dsn2"]
    # route() should now return the forced route even though a 2-hop BFS
    # route through dsn1 also exists.
    assert [n.name for n in net.route("andes1", "dsn2").nodes] == [
        "andes1", "lb", "dsn2"]


def test_route_concatenation_merges_junction():
    env = Environment()
    net = small_net(env)
    first = net.route("andes1", "dsn1")
    second = net.route("dsn1", "dsn2")
    combined = first + second
    names = [n.name for n in combined.nodes]
    assert names == ["andes1", "dsn1", "dsn2"]
    assert combined.hop_count == 2


def test_describe_lists_nodes_and_links():
    env = Environment()
    net = small_net(env)
    description = net.describe()
    assert "andes1" in description["nodes"]
    assert "andes1->dsn1" in description["links"]


def test_get_node_unknown_raises():
    env = Environment()
    net = Network(env)
    with pytest.raises(KeyError):
        net.get_node("nope")


# ---------------------------------------------------------------------------
# Connection
# ---------------------------------------------------------------------------

def test_connection_setup_cost_includes_tls():
    env = Environment()
    net = small_net(env)
    stages = [net.link_between("andes1", "dsn1"), net.get_node("dsn1")]
    plain = Connection(env, "plain", stages, tcp_handshake_s=0.001)
    secured = Connection(env, "tls", stages, tcp_handshake_s=0.001,
                         tls_handshakes=[DEFAULT_TLS])
    assert plain.setup_cost() == pytest.approx(0.001)
    assert secured.setup_cost() > plain.setup_cost()


def test_connection_send_traverses_all_stages():
    env = Environment()
    net = small_net(env)
    stages = [
        net.get_node("andes1"),
        net.link_between("andes1", "dsn1"),
        SecuredNode(net.get_node("dsn1"), DEFAULT_TLS),
    ]
    conn = Connection(env, "c", stages)
    factory = MessageFactory("prod")
    msg = factory.create(units.kib(16), now=0.0)

    def proc(env):
        yield from conn.send(msg)

    env.process(proc(env))
    env.run()
    assert conn.established
    assert conn.messages_sent == 1
    assert [hop.element for hop in msg.hops] == ["andes1", "andes1->dsn1", "dsn1"]


def test_connection_establish_is_idempotent():
    env = Environment()
    net = small_net(env)
    conn = Connection(env, "c", [net.get_node("dsn1")], tcp_handshake_s=0.5)

    def proc(env):
        yield from conn.establish()
        first = env.now
        yield from conn.establish()
        return first, env.now

    proc_obj = env.process(proc(env))
    first, second = env.run(until=proc_obj)
    assert first == pytest.approx(0.5)
    assert second == pytest.approx(0.5)


def test_connection_requires_stages():
    env = Environment()
    with pytest.raises(ValueError):
        Connection(env, "empty", [])


def test_connection_describe_and_stage_names():
    env = Environment()
    net = small_net(env)
    conn = Connection(env, "c", [net.get_node("andes1"),
                                 net.link_between("andes1", "dsn1")])
    assert conn.stage_names == ["andes1", "andes1->dsn1"]
    assert conn.describe()["name"] == "c"
