"""Setup shim so legacy (non-PEP-517) editable installs work offline.

The environment has no ``wheel`` package, which breaks
``pip install -e .`` through the PEP 517 build path; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``python setup.py develop``) work instead.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
