"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on a
scaled-down message budget (the paper streams up to 128K messages per run on
real hardware; the simulated benches default to a few hundred per point so
the whole suite finishes in about a minute).  Set ``REPRO_BENCH_MESSAGES``
to raise the per-producer message budget, and ``REPRO_BENCH_RUNS`` to
average more runs per point, when more fidelity is wanted.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

#: Per-producer message budget used by the figure benches.
BENCH_MESSAGES = int(os.environ.get("REPRO_BENCH_MESSAGES", "25"))
#: Runs averaged per experiment point.
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "1"))
#: Consumer counts on the x axis (the paper's 1-64 powers of two).
BENCH_CONSUMER_COUNTS = (1, 2, 4, 8, 16, 32, 64)
#: Root seed for all benches.
BENCH_SEED = 1


def run_once(benchmark, func, *args, **kwargs):
    """Run a whole-figure regeneration exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_settings():
    """Expose the shared benchmark scale settings to the benches."""
    return {
        "messages": BENCH_MESSAGES,
        "runs": BENCH_RUNS,
        "consumer_counts": BENCH_CONSUMER_COUNTS,
        "seed": BENCH_SEED,
    }
