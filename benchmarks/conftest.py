"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on a
scaled-down message budget (the paper streams up to 128K messages per run on
real hardware; the simulated benches default to a few hundred per point so
the whole suite finishes in about a minute).  Set ``REPRO_BENCH_MESSAGES``
to raise the per-producer message budget, and ``REPRO_BENCH_RUNS`` to
average more runs per point, when more fidelity is wanted.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
import time

import pytest

#: Per-producer message budget used by the figure benches.
BENCH_MESSAGES = int(os.environ.get("REPRO_BENCH_MESSAGES", "25"))
#: Runs averaged per experiment point.
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "1"))
#: Consumer counts on the x axis (the paper's 1-64 powers of two).
BENCH_CONSUMER_COUNTS = (1, 2, 4, 8, 16, 32, 64)
#: Root seed for all benches.
BENCH_SEED = 1


def run_once(benchmark, func, *args, **kwargs):
    """Run a whole-figure regeneration exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_settings():
    """Expose the shared benchmark scale settings to the benches."""
    return {
        "messages": BENCH_MESSAGES,
        "runs": BENCH_RUNS,
        "consumer_counts": BENCH_CONSUMER_COUNTS,
        "seed": BENCH_SEED,
    }


class _FallbackBenchmark:
    """Minimal stand-in for the pytest-benchmark ``benchmark`` fixture.

    Times the callable once with :func:`time.perf_counter` and remembers the
    elapsed seconds, so ``pytest benchmarks/`` stays runnable (as a smoke
    pass) in environments without the plugin.  The persistent trajectory
    lives in the dependency-free ``repro-streamsim bench`` subsystem; this
    fallback only keeps collection and the benches' assertions working.
    """

    def __init__(self) -> None:
        self.elapsed_s: float | None = None

    def _timed(self, func, *args, **kwargs):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        self.elapsed_s = time.perf_counter() - start
        return result

    def __call__(self, func, *args, **kwargs):
        return self._timed(func, *args, **kwargs)

    def pedantic(self, func, args=(), kwargs=None, rounds=1, iterations=1,
                 warmup_rounds=0):
        kwargs = kwargs or {}
        for _ in range(warmup_rounds):
            func(*args, **kwargs)
        result = None
        for _ in range(max(1, rounds)):
            for _ in range(max(1, iterations)):
                result = self._timed(func, *args, **kwargs)
        return result


class _FallbackBenchmarkPlugin:
    """Provides the ``benchmark`` fixture when the real plugin is inactive."""

    @pytest.fixture
    def benchmark(self):
        return _FallbackBenchmark()


def pytest_configure(config):
    # Registered dynamically (not as a module-level fixture) so the real
    # pytest-benchmark fixture is never shadowed when the plugin is active;
    # this covers both "not installed" and "-p no:benchmark".
    if not config.pluginmanager.hasplugin("benchmark"):
        config.pluginmanager.register(_FallbackBenchmarkPlugin(),
                                      "repro-benchmark-fallback")
