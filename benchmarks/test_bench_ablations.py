"""Ablation benches for the design choices discussed in §5.2 and §6.

* tunnel proxy type (Stunnel vs HAProxy vs Nginx),
* number of parallel connections to the PRS proxies (1 vs 4),
* the §6 MSS improvement of letting internal consumers bypass the LB,
* upgrading the 1 Gbps interfaces (the §6 "usage of high-speed network"),
* the two-shared-work-queues choice of §5.2,
* the §6 network-layer-forwarding (EJFAT / Banana Pepper) alternative.
"""

from __future__ import annotations

from repro.core import (
    ablation_link_speed,
    ablation_mss_lb_bypass,
    ablation_network_layer_forwarding,
    ablation_proxy_connections,
    ablation_tunnel_type,
    ablation_work_queue_count,
)
from repro.metrics import format_table
from .conftest import run_once


def test_bench_ablation_tunnel_type(benchmark, bench_settings):
    sweep = run_once(benchmark, ablation_tunnel_type,
                     consumer_counts=(1, 4, 16),
                     messages_per_producer=bench_settings["messages"],
                     seed=bench_settings["seed"])
    print()
    print(format_table(sweep.rows(), title="Ablation: PRS tunnel proxy type"))
    haproxy = dict(sweep.series("PRS(HAProxy)"))
    stunnel = dict(sweep.series("PRS(Stunnel)"))
    nginx = dict(sweep.series("PRS(Nginx)"))
    # HAProxy and Nginx behave similarly; Stunnel falls behind at scale.
    assert stunnel[16] < haproxy[16]
    assert 0.5 < nginx[16] / haproxy[16] < 1.5


def test_bench_ablation_proxy_connections(benchmark, bench_settings):
    sweep = run_once(benchmark, ablation_proxy_connections,
                     consumer_counts=(1, 4, 16),
                     messages_per_producer=bench_settings["messages"],
                     seed=bench_settings["seed"])
    print()
    print(format_table(sweep.rows(), title="Ablation: PRS parallel connections"))
    one = dict(sweep.series("PRS(HAProxy)"))
    four = dict(sweep.series("PRS(HAProxy,4conns)"))
    # §5.3: increasing connections to four shows no significant gain.
    for consumers in (1, 4, 16):
        assert abs(four[consumers] - one[consumers]) < 0.25 * one[consumers]


def test_bench_ablation_mss_lb_bypass(benchmark, bench_settings):
    sweep = run_once(benchmark, ablation_mss_lb_bypass,
                     consumer_counts=(4, 16, 64),
                     messages_per_producer=bench_settings["messages"],
                     seed=bench_settings["seed"])
    print()
    print(format_table(sweep.rows(), title="Ablation: MSS load-balancer bypass"))
    mss = dict(sweep.series("MSS"))
    bypass = dict(sweep.series("MSS(bypass)"))
    # §6: letting internal consumers skip the LB/ingress lifts MSS throughput.
    assert bypass[64] > mss[64]
    assert bypass[16] > mss[16]


def test_bench_ablation_link_speed(benchmark):
    rows = run_once(benchmark, ablation_link_speed,
                    consumers=8, messages_per_producer=6,
                    speeds_gbps=(1, 10))
    print()
    print(format_table(rows, title="Ablation: access/backbone link speed"))
    by_key = {(row["architecture"], row["link_gbps"]):
              row["throughput_msgs_per_s"] for row in rows}
    # Faster interfaces help every architecture (§6 'usage of high-speed network').
    for architecture in ("DTS", "PRS(HAProxy)", "MSS"):
        assert by_key[(architecture, 10)] > by_key[(architecture, 1)]


def test_bench_ablation_work_queue_count(benchmark, bench_settings):
    rows = run_once(benchmark, ablation_work_queue_count,
                    consumers=8, queue_counts=(1, 2, 4),
                    messages_per_producer=bench_settings["messages"],
                    seed=bench_settings["seed"])
    print()
    print(format_table(rows, title="Ablation: number of shared work queues"))
    by_count = {row["work_queues"]: row["throughput_msgs_per_s"] for row in rows}
    # §5.2 uses two shared queues "to achieve increased throughput": two
    # queues should not be worse than one by any meaningful margin.
    assert by_count[2] > 0.8 * by_count[1]


def test_bench_ablation_network_layer_forwarding(benchmark, bench_settings):
    sweep = run_once(benchmark, ablation_network_layer_forwarding,
                     consumer_counts=(1, 4, 16),
                     messages_per_producer=bench_settings["messages"],
                     seed=bench_settings["seed"])
    print()
    print(format_table(sweep.rows(),
                       title="Ablation: network-layer forwarding (EJFAT-style)"))
    dts = dict(sweep.series("DTS"))
    nlf = dict(sweep.series("NLF"))
    prs = dict(sweep.series("PRS(HAProxy)"))
    # A network-layer forwarder costs less than application-layer proxies but
    # still trails the direct path.
    assert nlf[16] > prs[16]
    assert nlf[16] <= dts[16] * 1.05
