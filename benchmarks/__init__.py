"""Benchmark suite package marker.

The package marker (together with pytest's ``--import-mode=importlib``)
lets the bench modules use ``from .conftest import run_once`` regardless of
how pytest is invoked.
"""
