"""Figure 8 — CDFs of per-message RTT, broadcast and gather.

Regenerates the RTT CDFs of the generic workload under broadcast and gather
and checks the qualitative trends of §5.5:

* valid, monotone CDFs everywhere,
* RTTs grow with consumer count for every architecture,
* at small/medium scale PRS is close to (or better than) DTS,
* at 64 consumers the DTS and PRS distributions converge (the
  single-producer bottleneck equalises them).
"""

from __future__ import annotations

import numpy as np

from repro.core import figure8
from repro.metrics import format_table
from .conftest import run_once

CDF_CONSUMER_COUNTS = (2, 16, 64)


def _quantile(cdf, prob):
    x, p = cdf
    idx = np.searchsorted(p, prob)
    return x[min(idx, len(x) - 1)]


def test_bench_figure8(benchmark, bench_settings):
    data = run_once(benchmark, figure8,
                    messages_per_producer=max(4, bench_settings["messages"] // 2),
                    consumer_counts=CDF_CONSUMER_COUNTS,
                    runs=bench_settings["runs"],
                    seed=bench_settings["seed"])

    print()
    print(format_table(data.rows,
                       title="Figure 8 source data: gather median RTT per point"))

    cdfs = data.cdfs["Generic"]
    for consumers in CDF_CONSUMER_COUNTS:
        for architecture, (x, p) in cdfs[consumers].items():
            assert len(x) == len(p) > 0
            assert np.all(np.diff(x) >= 0)
            assert np.all(np.diff(p) >= 0)
            assert p[-1] == 1.0

    # RTT distributions shift right as consumers scale up.
    for architecture in ("DTS", "PRS(HAProxy)", "MSS"):
        assert (_quantile(cdfs[64][architecture], 0.5)
                > _quantile(cdfs[2][architecture], 0.5))

    # PRS stays within ~2x of DTS at medium scale (often better in the paper).
    assert (_quantile(cdfs[16]["PRS(HAProxy)"], 0.5)
            < 2.0 * _quantile(cdfs[16]["DTS"], 0.5))

    # At 64 consumers DTS and PRS converge (within 50% of each other).
    dts64 = _quantile(cdfs[64]["DTS"], 0.5)
    prs64 = _quantile(cdfs[64]["PRS(HAProxy)"], 0.5)
    assert abs(dts64 - prs64) < 0.5 * max(dts64, prs64)
