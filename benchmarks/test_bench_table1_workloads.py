"""Table 1 — data streaming characteristics of the three workloads.

Regenerates Table 1 from the workload specifications and verifies the
values the paper tabulates (payload sizes, formats, packaging, rates and
parallelism modes).
"""

from __future__ import annotations

from repro.core import table1_rows, table1_text
from .conftest import run_once


def test_bench_table1(benchmark):
    rows = run_once(benchmark, table1_rows)
    table = {row["characteristic"]: row for row in rows}

    print()
    print(table1_text())

    assert table["Payload size"]["Deleria"] == "16.0 KiB"
    assert table["Payload size"]["LCLS"] == "1.0 MiB"
    assert table["Payload size"]["Generic"] == "4.0 MiB"
    assert table["Payload format"]["LCLS"] == "HDF5"
    assert table["Data packaging"]["Deleria"] == "8 events/msg"
    assert table["Data packaging"]["Generic"] == "One item/msg"
    assert table["Data rate"]["Deleria"] == "32 Gbps"
    assert table["Data rate"]["LCLS"] == "30 Gbps"
    assert table["Data rate"]["Generic"] == "25 Gbps"
    assert table["Production parallelism"]["Deleria"] == "Parallel (non-MPI)"
    assert table["Consumption parallelism"]["LCLS"] == "Parallel (MPI-based)"
