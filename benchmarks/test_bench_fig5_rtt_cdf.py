"""Figure 5 — CDFs of per-message RTT, work sharing with feedback.

Regenerates the per-consumer-count RTT CDFs for Dstream and Lstream and
checks the qualitative observations of §5.4:

* every CDF is a valid, monotone distribution ending at probability 1,
* beyond ~8 consumers the distributions shift right (larger RTTs),
* MSS's distribution sits to the right of DTS/PRS (its curve is "slower"),
* PRS keeps a tight distribution: the bulk of its messages stay below a
  small multiple of its median (the paper highlights 80% under 0.7 s /
  12.5 s for Dstream / Lstream at 64 consumers).
"""

from __future__ import annotations

import numpy as np

from repro.core import figure5
from repro.metrics import format_table
from .conftest import run_once

#: Subset of consumer counts shown in the figure that we regenerate here.
CDF_CONSUMER_COUNTS = (1, 8, 64)


def _quantile(cdf, prob):
    x, p = cdf
    idx = np.searchsorted(p, prob)
    return x[min(idx, len(x) - 1)]


def test_bench_figure5(benchmark, bench_settings):
    data = run_once(benchmark, figure5,
                    messages_per_producer=bench_settings["messages"],
                    consumer_counts=CDF_CONSUMER_COUNTS,
                    runs=bench_settings["runs"],
                    seed=bench_settings["seed"])

    print()
    print(format_table(data.rows,
                       title="Figure 5 source data: median RTT per point"))

    for workload in ("Dstream", "Lstream"):
        cdfs = data.cdfs[workload]
        for consumers in CDF_CONSUMER_COUNTS:
            for architecture, (x, p) in cdfs[consumers].items():
                assert len(x) == len(p) > 0
                assert np.all(np.diff(x) >= 0)
                assert np.all(np.diff(p) >= 0)
                assert p[-1] == 1.0

        # Rightward shift with scale for the managed architecture; DTS stays
        # within a narrow band (the paper even shows a small dip around 8
        # consumers before RTTs rise again).
        assert (_quantile(cdfs[64]["MSS"], 0.5)
                > _quantile(cdfs[1]["MSS"], 0.5))
        dts_small = _quantile(cdfs[1]["DTS"], 0.5)
        dts_large = _quantile(cdfs[64]["DTS"], 0.5)
        assert 0.3 * dts_small <= dts_large <= 50 * dts_small

        # MSS sits to the right of DTS and PRS at 64 consumers.
        mss_median = _quantile(cdfs[64]["MSS"], 0.5)
        assert mss_median > _quantile(cdfs[64]["DTS"], 0.5)
        assert mss_median > _quantile(cdfs[64]["PRS(HAProxy)"], 0.5)

        # PRS keeps a tight distribution: 80th percentile within ~3x median.
        prs_median = _quantile(cdfs[64]["PRS(HAProxy)"], 0.5)
        prs_p80 = _quantile(cdfs[64]["PRS(HAProxy)"], 0.8)
        assert prs_p80 <= 3.0 * prs_median
