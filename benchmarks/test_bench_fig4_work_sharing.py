"""Figure 4 — throughput under the work sharing pattern.

Regenerates both panels (Dstream and Lstream) across DTS, PRS(Stunnel),
PRS(HAProxy), PRS(HAProxy,4conns) and MSS for 1-64 consumers, then checks
the qualitative claims of §5.3:

* DTS achieves the highest throughput and keeps scaling the longest,
* PRS(HAProxy) sits between DTS and MSS and plateaus earlier,
* PRS(Stunnel) shows little improvement with scale and is infeasible at
  32/64 consumers (16-connection limit),
* MSS caps out beyond ~8 consumers,
* PRS/MSS overhead vs DTS reaches roughly the paper's "up to 2.5x".
"""

from __future__ import annotations

from repro.core import figure4
from repro.metrics import format_table
from .conftest import run_once


def _last(series):
    return series[-1][1]


def test_bench_figure4(benchmark, bench_settings):
    data = run_once(benchmark, figure4,
                    messages_per_producer=bench_settings["messages"],
                    consumer_counts=bench_settings["consumer_counts"],
                    runs=bench_settings["runs"],
                    seed=bench_settings["seed"])

    print()
    print(format_table(data.rows,
                       title="Figure 4: throughput (msgs/s), work sharing"))

    for workload in ("Dstream", "Lstream"):
        sweep = data.sweeps[workload]
        dts = dict(sweep.series("DTS"))
        haproxy = dict(sweep.series("PRS(HAProxy)"))
        stunnel = dict(sweep.series("PRS(Stunnel)"))
        mss = dict(sweep.series("MSS"))

        # DTS dominates every feasible point and still improves up to 64.
        for consumers, value in haproxy.items():
            assert dts[consumers] > value
        for consumers, value in mss.items():
            assert dts[consumers] > value
        assert dts[64] > dts[8]

        # Stunnel: infeasible at 32/64 (the paper's missing points) and
        # clearly below HAProxy wherever both exist.
        assert 32 not in stunnel and 64 not in stunnel
        assert 16 in stunnel
        assert stunnel[16] < haproxy[16]
        # Little improvement once its single TLS flow saturates.
        assert stunnel[16] < stunnel[8] * 1.25

        # MSS saturates: the 8->64 consumer gain is small next to DTS's.
        assert mss[64] / mss[8] < dts[64] / dts[8]
        # PRS(HAProxy) outperforms MSS at scale.
        assert haproxy[64] > mss[64]

        # Overhead vs DTS in the paper's reported range (roughly up to ~2.5x).
        assert 1.15 < dts[64] / haproxy[64] < 4.0
        assert 1.4 < dts[64] / mss[64] < 5.0

    # Larger payloads mean lower message rates: Lstream << Dstream.
    assert _last(data.sweeps["Lstream"].series("DTS")) < \
        _last(data.sweeps["Dstream"].series("DTS")) / 10
