"""Micro-benchmarks of the simulation substrate itself.

These measure the cost of the building blocks (event loop, link transfers,
broker publishes, end-to-end experiment runs) so regressions in simulator
performance are visible independently of the figure benches.
"""

from __future__ import annotations

from repro.amqp import Broker, BrokerCluster
from repro.architectures import TestbedConfig
from repro.harness import Experiment, ExperimentConfig
from repro.netsim import MessageFactory, Network
from repro.netsim import units
from repro.simkit import Environment


def test_bench_simkit_event_loop(benchmark):
    """Throughput of the bare discrete-event loop (timeout chains)."""

    def run():
        env = Environment()

        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(0.001)

        for _ in range(10):
            env.process(ticker(env, 500))
        env.run()
        return env.now

    result = benchmark(run)
    assert result > 0


def test_bench_link_transfer(benchmark):
    """Cost of pushing 1000 messages through a contended 1 Gbps link."""

    def run():
        env = Environment()
        net = Network(env)
        net.add_node("a")
        net.add_node("b")
        link, _ = net.connect("a", "b", bandwidth_bps=units.gbps(1))
        factory = MessageFactory("p")

        def sender(env, link):
            for _ in range(100):
                message = factory.create(units.kib(16), now=env.now)
                yield from link.traverse(message)

        for _ in range(10):
            env.process(sender(env, link))
        env.run()
        return link.monitor.counter("messages").value

    assert benchmark(run) == 1000


def test_bench_broker_publish_consume(benchmark):
    """Broker-cluster publish/dispatch loop without any network stages."""

    def run():
        env = Environment()
        net = Network(env)
        net.add_node("dsn1")
        broker = Broker(env, "rmqs1", net.get_node("dsn1"))
        cluster = BrokerCluster(env, "c", [broker], net)
        queue = cluster.declare_queue("work")
        received = []

        def deliver(message):
            yield env.timeout(0)
            received.append(message)

        queue.subscribe("c1", deliver, prefetch=0)
        factory = MessageFactory("p")

        def producer(env):
            for _ in range(500):
                message = factory.create(units.kib(16), now=env.now,
                                         routing_key="work")
                yield from cluster.publish(broker, message, "", "work")

        env.process(producer(env))
        env.run()
        return len(received)

    assert benchmark(run) == 500


def test_bench_single_experiment_point(benchmark):
    """Wall-clock cost of one full experiment point (DTS, 4x4, Dstream)."""

    def run():
        config = ExperimentConfig(
            architecture="DTS", workload="Dstream", pattern="work_sharing",
            num_producers=4, num_consumers=4, messages_per_producer=25,
            testbed=TestbedConfig(producer_nodes=4, consumer_nodes=4))
        return Experiment(config).run_single(0)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    assert result.completed
    assert result.consumed == 100


def test_bench_scenario_runner_serial(benchmark):
    """Overhead of the unified scenario runner (serial backend, 4 points)."""
    from repro.harness import ScenarioSet, run_scenarios

    def run():
        base = ExperimentConfig(
            architecture="DTS", workload="Dstream", pattern="work_sharing",
            num_producers=2, num_consumers=2, messages_per_producer=10,
            testbed=TestbedConfig(producer_nodes=4, consumer_nodes=4))
        scenarios = ScenarioSet.grid(base, architectures=["DTS", "MSS"],
                                     consumer_counts=[1, 2])
        return run_scenarios(scenarios)

    outcomes = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    assert len(outcomes) == 4
    assert all(outcome.result.feasible for outcome in outcomes)


def test_bench_scenario_runner_process_pool(benchmark):
    """The same 4 points fanned out over a 2-worker process pool."""
    from repro.harness import ProcessPoolBackend, ScenarioSet, run_scenarios

    def run():
        base = ExperimentConfig(
            architecture="DTS", workload="Dstream", pattern="work_sharing",
            num_producers=2, num_consumers=2, messages_per_producer=10,
            testbed=TestbedConfig(producer_nodes=4, consumer_nodes=4))
        scenarios = ScenarioSet.grid(base, architectures=["DTS", "MSS"],
                                     consumer_counts=[1, 2])
        return run_scenarios(scenarios, backend=ProcessPoolBackend(2, chunksize=1))

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert len(outcomes) == 4
    assert all(outcome.result.feasible for outcome in outcomes)
