"""Figure 7 — broadcast throughput and broadcast+gather median RTT.

Regenerates both panels for the generic workload (4 MiB messages) across
DTS, PRS(HAProxy) and MSS and checks §5.5's claims:

* (a) PRS scales almost equivalently to DTS for the broadcast fan-out while
  MSS bottlenecks early and stagnates,
* DTS/PRS eventually stagnate too (large payloads saturate the consumer
  links),
* (b) gather RTTs of DTS and PRS are comparable and rise sharply with the
  consumer count because of the single-producer bottleneck.
"""

from __future__ import annotations

from repro.core import figure7
from repro.metrics import format_table
from .conftest import run_once


def test_bench_figure7(benchmark, bench_settings):
    data = run_once(benchmark, figure7,
                    messages_per_producer=max(4, bench_settings["messages"] // 2),
                    consumer_counts=bench_settings["consumer_counts"],
                    runs=bench_settings["runs"],
                    seed=bench_settings["seed"])

    print()
    print(format_table(data.rows,
                       title="Figure 7: broadcast throughput (a) and gather RTT (b)"))

    broadcast = data.sweeps["broadcast"]
    gather = data.sweeps["broadcast_gather"]

    dts = dict(broadcast.series("DTS"))
    prs = dict(broadcast.series("PRS(HAProxy)"))
    mss = dict(broadcast.series("MSS"))

    # (a) PRS tracks DTS closely at scale; MSS bottlenecks well below both.
    assert prs[64] > 0.6 * dts[64]
    assert mss[64] < 0.6 * dts[64]
    # MSS stagnates: almost no gain from 16 to 64 consumers.
    assert mss[64] < 1.5 * mss[16]
    # DTS/PRS stagnate eventually as well (sub-linear growth 16 -> 64).
    assert dts[64] < 4.0 * dts[16]

    # (b) gather RTTs: DTS and PRS comparable; all rise sharply with scale.
    dts_rtt = dict(gather.series("DTS", "median_rtt_s"))
    prs_rtt = dict(gather.series("PRS(HAProxy)", "median_rtt_s"))
    mss_rtt = dict(gather.series("MSS", "median_rtt_s"))
    assert prs_rtt[64] < 2.0 * dts_rtt[64]
    assert dts_rtt[64] > 3.0 * dts_rtt[4]
    assert mss_rtt[64] > 3.0 * mss_rtt[4]
    # Small consumer counts stay fast (the paper: under five seconds).
    assert dts_rtt[4] < 5.0
    assert prs_rtt[4] < 5.0
