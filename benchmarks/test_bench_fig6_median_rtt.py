"""Figure 6 — median RTT under work sharing with feedback.

Regenerates the median-RTT-vs-consumers curves for Dstream and Lstream and
checks §5.4's claims:

* DTS and PRS(HAProxy) stay close (PRS is sometimes slightly better),
* MSS shows the largest RTTs with a sharp increase at 64 consumers,
* the MSS overhead factor vs DTS is large (the paper quotes 6.9x),
* adding proxy connections (HAProxy x4) does not change RTT noticeably.
"""

from __future__ import annotations

from repro.core import figure6
from repro.metrics import format_table
from .conftest import run_once


def test_bench_figure6(benchmark, bench_settings):
    data = run_once(benchmark, figure6,
                    messages_per_producer=bench_settings["messages"],
                    consumer_counts=bench_settings["consumer_counts"],
                    runs=bench_settings["runs"],
                    seed=bench_settings["seed"])

    print()
    print(format_table(data.rows,
                       title="Figure 6: median RTT (s), work sharing with feedback"))

    for workload in ("Dstream", "Lstream"):
        sweep = data.sweeps[workload]
        dts = dict(sweep.series("DTS", "median_rtt_s"))
        prs = dict(sweep.series("PRS(HAProxy)", "median_rtt_s"))
        prs4 = dict(sweep.series("PRS(HAProxy,4conns)", "median_rtt_s"))
        mss = dict(sweep.series("MSS", "median_rtt_s"))

        # MSS is the worst architecture at scale and blows up at 64 consumers.
        assert mss[64] > dts[64]
        assert mss[64] > prs[64]
        assert mss[64] > 2.5 * mss[4]

        # DTS and PRS(HAProxy) remain comparable (within ~2x of each other).
        assert prs[64] < 2.0 * dts[64]
        assert dts[64] < 2.0 * max(prs[64], dts[64])

        # Extra proxy connections yield no observable RTT improvement (§5.4).
        assert abs(prs4[64] - prs[64]) < 0.5 * prs[64] + 1e-9

        # Overhead factor vs DTS is substantial for MSS (paper: up to 6.9x).
        assert mss[64] / dts[64] > 2.0

    # Dstream RTTs are far smaller than Lstream RTTs (16 KiB vs 1 MiB).
    dstream_dts = dict(data.sweeps["Dstream"].series("DTS", "median_rtt_s"))
    lstream_dts = dict(data.sweeps["Lstream"].series("DTS", "median_rtt_s"))
    assert dstream_dts[64] < lstream_dts[64]
