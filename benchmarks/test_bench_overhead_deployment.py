"""Overhead summary (§5.3/§5.4 prose) and the deployment comparison (§2/§6).

The paper's text quantifies the overhead of PRS/MSS relative to DTS ("up to
2.5x" for work sharing throughput, "6.9x" for MSS feedback RTT) and
qualitatively compares deployment feasibility.  These benches regenerate
both from the simulator.
"""

from __future__ import annotations

from repro.core import (
    architecture_comparison_rows,
    figure4,
    figure6,
    overhead_summary,
)
from repro.architectures import TestbedConfig
from repro.metrics import format_table
from .conftest import run_once


def test_bench_overhead_summary(benchmark, bench_settings):
    def build():
        fig4 = figure4(messages_per_producer=bench_settings["messages"],
                       consumer_counts=(4, 16, 64),
                       architectures=("DTS", "PRS(HAProxy)", "MSS"),
                       seed=bench_settings["seed"])
        fig6 = figure6(messages_per_producer=bench_settings["messages"],
                       consumer_counts=(4, 16, 64),
                       architectures=("DTS", "PRS(HAProxy)", "MSS"),
                       seed=bench_settings["seed"])
        return overhead_summary(fig4, fig6)

    rows = run_once(benchmark, build)
    print()
    print(format_table(rows, title="Overhead vs DTS (throughput and median RTT)"))

    throughput_factors = [row["overhead_factor"] for row in rows
                          if row["metric"] == "throughput_msgs_per_s"]
    rtt_factors = {(row["architecture"], row["workload"], row["consumers"]):
                   row["overhead_factor"] for row in rows
                   if row["metric"] == "median_rtt_s"}

    # Work-sharing overhead in the paper's reported range (up to ~2.5x).
    assert max(throughput_factors) > 1.5
    assert max(throughput_factors) < 6.0
    # MSS feedback RTT overhead is the largest overhead measured (paper: 6.9x).
    mss_rtt = [v for (arch, _w, _c), v in rtt_factors.items() if arch == "MSS"]
    prs_rtt = [v for (arch, _w, _c), v in rtt_factors.items()
               if arch == "PRS(HAProxy)"]
    assert max(mss_rtt) > 2.0
    assert max(mss_rtt) > max(prs_rtt)


def test_bench_deployment_comparison(benchmark):
    rows = run_once(benchmark, architecture_comparison_rows,
                    ["DTS", "PRS(HAProxy)", "MSS"],
                    testbed_config=TestbedConfig(producer_nodes=2, consumer_nodes=2))
    print()
    print(format_table(rows, title="Architecture deployment comparison"))

    by_arch = {row["architecture"]: row for row in rows}
    dts, prs, mss = by_arch["DTS"], by_arch["PRS(HAProxy)"], by_arch["MSS"]
    # Hop count ordering: DTS < PRS < MSS (Figure 1's data-flow paths).
    assert dts["data_path_hops"] < prs["data_path_hops"] <= mss["data_path_hops"]
    # Operational burden ordering is the reverse: DTS needs the most rules.
    assert dts["firewall_rules"] > prs["firewall_rules"] > mss["firewall_rules"] == 0
    # MSS offers the best multi-user scalability, DTS the worst (§2).
    assert mss["multi_user_scalability"] > prs["multi_user_scalability"] \
        > dts["multi_user_scalability"]
